//! Aggregate serving counters: admission, batch occupancy, reloads.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (inclusive) of the batch-occupancy histogram buckets. The
/// first [`crate::TILE`] buckets are exact sizes — whether the dispatcher
/// fills whole `dot4` tiles is the main thing the histogram exists to show —
/// and the tail is power-of-two ranges up to the default `max_batch`.
const OCCUPANCY_BOUNDS: [u64; 8] = [1, 2, 3, 4, 8, 16, 32, 64];

/// Number of occupancy buckets (the bounds above plus an overflow bucket).
pub const OCCUPANCY_BUCKETS: usize = OCCUPANCY_BOUNDS.len() + 1;

/// Human-readable label for occupancy bucket `i`.
fn bucket_label(i: usize) -> String {
    match i {
        0..=3 => format!("{}", OCCUPANCY_BOUNDS[i]),
        _ if i < OCCUPANCY_BOUNDS.len() => {
            format!("{}-{}", OCCUPANCY_BOUNDS[i - 1] + 1, OCCUPANCY_BOUNDS[i])
        }
        _ => format!(">{}", OCCUPANCY_BOUNDS[OCCUPANCY_BOUNDS.len() - 1]),
    }
}

fn bucket_index(batch_size: usize) -> usize {
    OCCUPANCY_BOUNDS
        .iter()
        .position(|&b| batch_size as u64 <= b)
        .unwrap_or(OCCUPANCY_BOUNDS.len())
}

/// Lock-free aggregate counters maintained by a [`crate::LafServer`].
///
/// All counters are monotone (relaxed atomics); [`ServeStats::report`] takes
/// a point-in-time snapshot. Counts observed while requests are in flight
/// may be mid-update relative to each other — exact invariants (e.g.
/// `submitted == completed + rejected`) hold once the server is idle or shut
/// down.
#[derive(Debug, Default)]
pub struct ServeStats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    tile_batches: AtomicU64,
    reloads: AtomicU64,
    compact_failures: AtomicU64,
    timeouts: AtomicU64,
    wal_sync_retries: AtomicU64,
    compact_retries: AtomicU64,
    flush_retries: AtomicU64,
    reload_failures: AtomicU64,
    peak_queue_depth: AtomicU64,
    occupancy: [AtomicU64; OCCUPANCY_BUCKETS],
}

impl ServeStats {
    /// Record an admitted request and the queue depth it observed.
    pub(crate) fn record_submit(&self, queue_depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.peak_queue_depth
            .fetch_max(queue_depth as u64, Ordering::Relaxed);
    }

    /// Record a request rejected by admission control.
    pub(crate) fn record_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one dispatched batch of `size` requests.
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(size as u64, Ordering::Relaxed);
        if size > 0 && size.is_multiple_of(crate::TILE) {
            self.tile_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.occupancy[bucket_index(size)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a snapshot hot-reload.
    pub(crate) fn record_reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a failed background compaction (the error itself is not
    /// surfaced to any request — this counter is the diagnostic).
    pub(crate) fn record_compact_failure(&self) {
        self.compact_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a blocking request that gave up waiting (its deadline
    /// expired before the dispatcher served it).
    pub(crate) fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one retried WAL sync (the retry that *followed* a transient
    /// sync failure — a group commit that needed two attempts counts one).
    pub(crate) fn record_wal_sync_retry(&self) {
        self.wal_sync_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one retried background compaction attempt.
    pub(crate) fn record_compact_retry(&self) {
        self.compact_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one retried dispatcher flush (a transient stall absorbed
    /// before the batch was dispatched — the batch is never dropped).
    pub(crate) fn record_flush_retry(&self) {
        self.flush_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a snapshot hot-reload whose epoch flip failed: the server
    /// kept serving the previous epoch.
    pub(crate) fn record_reload_failure(&self) {
        self.reload_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Background compactions that failed so far.
    pub fn compact_failures(&self) -> u64 {
        self.compact_failures.load(Ordering::Relaxed)
    }

    /// Blocking requests that hit their deadline so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// WAL sync retries performed so far.
    pub fn wal_sync_retries(&self) -> u64 {
        self.wal_sync_retries.load(Ordering::Relaxed)
    }

    /// Background compaction retries performed so far.
    pub fn compact_retries(&self) -> u64 {
        self.compact_retries.load(Ordering::Relaxed)
    }

    /// Dispatcher flush retries performed so far.
    pub fn flush_retries(&self) -> u64 {
        self.flush_retries.load(Ordering::Relaxed)
    }

    /// Hot-reload epoch flips that failed so far.
    pub fn reload_failures(&self) -> u64 {
        self.reload_failures.load(Ordering::Relaxed)
    }

    /// Requests admitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Requests rejected by admission control so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests answered so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot of every counter.
    pub fn report(&self) -> ServeStatsReport {
        let batches = self.batches.load(Ordering::Relaxed);
        let completed = self.completed.load(Ordering::Relaxed);
        ServeStatsReport {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            batches,
            tile_batches: self.tile_batches.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            compact_failures: self.compact_failures.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wal_sync_retries: self.wal_sync_retries.load(Ordering::Relaxed),
            compact_retries: self.compact_retries.load(Ordering::Relaxed),
            flush_retries: self.flush_retries.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            mean_batch_occupancy: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            occupancy: self
                .occupancy
                .iter()
                .enumerate()
                .map(|(i, c)| OccupancyBucket {
                    batch_size: bucket_label(i),
                    batches: c.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Zero every counter (e.g. between warmup and the timed bench window).
    pub fn reset(&self) {
        self.submitted.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.completed.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.tile_batches.store(0, Ordering::Relaxed);
        self.reloads.store(0, Ordering::Relaxed);
        self.compact_failures.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.wal_sync_retries.store(0, Ordering::Relaxed);
        self.compact_retries.store(0, Ordering::Relaxed);
        self.flush_retries.store(0, Ordering::Relaxed);
        self.reload_failures.store(0, Ordering::Relaxed);
        self.peak_queue_depth.store(0, Ordering::Relaxed);
        for bucket in &self.occupancy {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// One row of the batch-occupancy histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyBucket {
    /// Batch-size range this bucket covers (`"1"`..`"4"` exact, then ranges).
    pub batch_size: String,
    /// Number of dispatched batches whose size fell in the range.
    pub batches: u64,
}

/// Serializable snapshot of [`ServeStats`], embedded in `BENCH_serving.json`
/// and printed by the `serve-concurrent` example mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStatsReport {
    /// Requests admitted past admission control.
    pub submitted: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Kernel batches dispatched.
    pub batches: u64,
    /// Batches whose size was a whole multiple of the `dot4` tile.
    pub tile_batches: u64,
    /// Snapshot hot-reloads performed.
    pub reloads: u64,
    /// Background compactions that failed (mutable servers only; the
    /// dispatcher backs off until the write backlog grows further).
    pub compact_failures: u64,
    /// Blocking requests that hit their [`crate::ServeConfig`] deadline
    /// and unblocked with [`crate::ServeError::Timeout`].
    #[serde(default)]
    pub timeouts: u64,
    /// Transient WAL group-commit sync failures absorbed by retry.
    #[serde(default)]
    pub wal_sync_retries: u64,
    /// Transient background-compaction failures absorbed by retry.
    #[serde(default)]
    pub compact_retries: u64,
    /// Transient dispatcher flush stalls absorbed by retry (the
    /// `serve.coalesce.flush` failpoint; no batch is ever dropped).
    #[serde(default)]
    pub flush_retries: u64,
    /// Hot-reload epoch flips that failed ([`crate::ServeError::ReloadFailed`]);
    /// the server kept serving the previous epoch.
    #[serde(default)]
    pub reload_failures: u64,
    /// Highest queue depth observed at submission time.
    pub peak_queue_depth: u64,
    /// `completed / batches` — the average coalescing factor.
    pub mean_batch_occupancy: f64,
    /// Histogram of dispatched batch sizes.
    pub occupancy: Vec<OccupancyBucket>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_exact_tile_sizes_then_ranges() {
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(5), 4);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(64), 7);
        assert_eq!(bucket_index(65), 8);
        assert_eq!(bucket_label(0), "1");
        assert_eq!(bucket_label(4), "5-8");
        assert_eq!(bucket_label(8), ">64");
    }

    #[test]
    fn report_reflects_recorded_events() {
        let stats = ServeStats::default();
        stats.record_submit(3);
        stats.record_submit(7);
        stats.record_reject();
        stats.record_batch(4);
        stats.record_batch(1);
        stats.record_reload();
        let report = stats.report();
        assert_eq!(report.submitted, 2);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed, 5);
        assert_eq!(report.batches, 2);
        assert_eq!(report.tile_batches, 1);
        assert_eq!(report.reloads, 1);
        assert_eq!(report.peak_queue_depth, 7);
        assert!((report.mean_batch_occupancy - 2.5).abs() < 1e-12);
        assert_eq!(report.occupancy[3].batches, 1, "one size-4 batch");
        assert_eq!(report.occupancy[0].batches, 1, "one size-1 batch");

        stats.reset();
        let zeroed = stats.report();
        assert_eq!(zeroed.submitted, 0);
        assert_eq!(zeroed.batches, 0);
        assert!(zeroed.occupancy.iter().all(|b| b.batches == 0));
    }

    #[test]
    fn report_serde_round_trip() {
        let stats = ServeStats::default();
        stats.record_submit(1);
        stats.record_batch(3);
        let report = stats.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: ServeStatsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
