//! Serving-layer tuning knobs.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Queries per mini-GEMM tile of the specialized batch kernels
/// (`laf_vector`'s `dot4` path processes 4 queries per dataset-row load).
/// The dispatcher flushes early once a whole tile is queued, because waiting
/// longer cannot improve per-row amortization for those queries.
pub const TILE: usize = 4;

/// Tuning knobs for [`crate::LafServer`].
///
/// The defaults target the container-scale workloads of the benches; real
/// deployments tune `coalesce_window_us` against their latency budget (it is
/// the worst-case queueing delay added to an isolated request) and
/// `max_queue_depth` against memory and tail-latency bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Maximum time a request waits for batch-mates before the dispatcher
    /// flushes anyway, in microseconds. `0` disables waiting entirely: every
    /// request dispatches as soon as the dispatcher sees it.
    pub coalesce_window_us: u64,
    /// Largest merged batch handed to one kernel call. Values are clamped to
    /// at least 1; `1` degenerates to one-request-at-a-time dispatch (the
    /// uncoalesced baseline arm of `exp_serving`).
    pub max_batch: usize,
    /// Admission-control bound: submissions beyond this many queued requests
    /// are rejected with [`crate::ServeError::Overloaded`] instead of
    /// buffering without limit.
    pub max_queue_depth: usize,
    /// Mutable servers only: once a batch leaves at least this many pending
    /// operations (delta rows + tombstones), the dispatcher folds them into
    /// a fresh base snapshot and publishes it as a new epoch. `0` disables
    /// automatic compaction (the default — immutable servers and callers
    /// that compact on their own schedule).
    pub compact_threshold: usize,
    /// Per-request deadline for the blocking submission paths, in
    /// microseconds. A request still unanswered after this long fails with
    /// [`crate::ServeError::Timeout`] — the caller unblocks, the dispatcher
    /// still finishes the work and discards the unclaimed result. `0` (the
    /// default) disables deadlines: blocking calls wait as long as it
    /// takes.
    pub request_deadline_us: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            coalesce_window_us: 200,
            max_batch: 64,
            max_queue_depth: 1024,
            compact_threshold: 0,
            request_deadline_us: 0,
        }
    }
}

impl ServeConfig {
    /// The baseline configuration `exp_serving` compares against: no
    /// coalescing window and single-request batches, so every query runs the
    /// scalar kernel path exactly as a direct synchronous call would.
    pub fn uncoalesced() -> Self {
        Self {
            coalesce_window_us: 0,
            max_batch: 1,
            ..Self::default()
        }
    }

    /// The coalescing window as a [`Duration`].
    pub fn window(&self) -> Duration {
        Duration::from_micros(self.coalesce_window_us)
    }

    /// The per-request deadline as a [`Duration`]; `None` when disabled.
    pub fn deadline(&self) -> Option<Duration> {
        (self.request_deadline_us > 0).then(|| Duration::from_micros(self.request_deadline_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.max_batch >= TILE);
        assert!(c.max_queue_depth >= c.max_batch);
        assert_eq!(c.window(), Duration::from_micros(c.coalesce_window_us));
    }

    #[test]
    fn uncoalesced_is_one_at_a_time() {
        let c = ServeConfig::uncoalesced();
        assert_eq!(c.max_batch, 1);
        assert_eq!(c.coalesce_window_us, 0);
    }

    #[test]
    fn config_serde_round_trip() {
        let c = ServeConfig {
            coalesce_window_us: 750,
            max_batch: 32,
            max_queue_depth: 256,
            compact_threshold: 128,
            request_deadline_us: 5_000,
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: ServeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn deadline_is_none_when_disabled() {
        assert_eq!(ServeConfig::default().deadline(), None);
        let c = ServeConfig {
            request_deadline_us: 250,
            ..ServeConfig::default()
        };
        assert_eq!(c.deadline(), Some(Duration::from_micros(250)));
    }
}
