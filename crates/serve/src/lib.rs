//! # laf-serve
//!
//! Concurrent serving front for trained LAF pipelines: request coalescing
//! into the batch kernels, admission control, and atomic snapshot
//! hot-reload.
//!
//! ## Why a serving layer
//!
//! [`laf_core::LafPipeline`] is a synchronous handle: each caller runs its
//! own query, one at a time, on the scalar kernel path. But the specialized
//! distance kernels underneath (see `laf_vector`'s `MetricKernel`) have a
//! query-major mini-GEMM batch path that amortizes every dataset-row load
//! across [`TILE`] queries — throughput that independent single-query
//! callers can never reach. [`LafServer`] closes that gap with the standard
//! continuous-batching idea: requests from any number of threads land in a
//! queue, a dispatcher thread merges them inside a bounded micro-batch
//! window, one batch-kernel call answers the whole merged batch, and the
//! per-request results scatter back to the blocked callers. Each engine's
//! batch entry points are bit-identical to its per-query forms, so
//! coalescing is invisible to callers — same results, better throughput.
//!
//! Submission comes in two shapes: the blocking methods
//! ([`LafServer::range`], [`LafServer::range_count`], …) block until their
//! result is served, and the `*_async` variants return a [`Ticket`]
//! immediately so one caller can keep several requests in flight. Pipelined
//! tickets are how a single connection still feeds full tiles: the
//! dispatcher coalesces whatever is queued, no matter how many threads
//! queued it.
//!
//! ## One front door
//!
//! Every request kind — the four reads and the two writes — is a variant of
//! [`QueryRequest`], answered by the matching [`QueryResponse`] variant
//! through [`LafServer::submit`] / [`LafServer::submit_async`] (and
//! [`TenantServer::submit`] for multi-tenant routing). The per-kind typed
//! methods are thin wrappers over the same submission path, kept so
//! existing call sites read naturally; routers and protocol shims should
//! hold `QueryRequest` values and call `submit`.
//!
//! ## Mutable serving
//!
//! [`LafServer::start_mutable`] serves a [`laf_core::MutablePipeline`]:
//! insert/delete requests route through its write-ahead log and reads
//! answer through the merged base+delta path, all in queue order, so a
//! caller that pipelines a write then a read observes its own write.
//! Writes in one batch share a single WAL sync (group commit) and are
//! acknowledged only after it succeeds. With
//! [`ServeConfig::compact_threshold`] set, the dispatcher folds the delta
//! into a fresh base snapshot in the background of the request stream and
//! publishes it as a new epoch — the mutable plane's hot-reload.
//!
//! ## Flush policy
//!
//! The dispatcher flushes the queue into a batch when the first of these
//! holds:
//!
//! 1. **Size cap** — `max_batch` requests are queued (takes `max_batch`);
//! 2. **Tile fill** — at least [`TILE`] (= 4) requests are queued (takes the
//!    largest whole-tile prefix): waiting longer cannot improve the
//!    mini-GEMM's per-row amortization for those queries, so holding them
//!    would add latency for nothing;
//! 3. **Deadline** — the oldest queued request has waited
//!    `coalesce_window_us` (takes everything queued): the window bounds the
//!    queueing latency a lone request can pay;
//! 4. **Shutdown** — the server is stopping: everything queued is drained
//!    and answered, never dropped.
//!
//! ## Admission control
//!
//! The queue is bounded by `max_queue_depth`. A submission that finds the
//! queue full fails fast with [`ServeError::Overloaded`] instead of
//! buffering without limit — under sustained overload the queue would
//! otherwise grow unboundedly, turning a throughput deficit into unbounded
//! memory growth and unbounded latency. Rejected requests are counted on
//! [`ServeStats`]; the retry policy belongs to the caller.
//!
//! ## Hot reload
//!
//! [`LafServer::reload`] swaps the served snapshot atomically: the
//! replacement pipeline's engine is built *before* the swap, then an
//! epoch-tagged `Arc` flip makes it current. Batches already dispatched
//! drain on the epoch they started with (they hold the old `Arc`, which the
//! mmap snapshot path makes cheap to keep alive); every response carries
//! the epoch that served it ([`Served::epoch`]), so callers can tell
//! exactly which snapshot generation answered. No lock is held across any
//! kernel work and no request is ever lost or answered by a mix of epochs.
//!
//! ## Multi-tenant snapshot cache
//!
//! A host that serves many tenants cannot keep every snapshot resident.
//! [`SnapshotCache`] is a buffer manager over snapshot files: tenants
//! register their (read-only) snapshot paths, [`SnapshotCache::pin`]
//! returns a pinned pipeline — loading it via mmap on a miss, evicting
//! unpinned victims chosen by an [`EvictionPolicy`] (LRU by default) when
//! the byte budget or entry cap would be exceeded — and dropping the
//! [`PinnedSnapshot`] guard makes the entry evictable again. Pinned
//! entries are never evicted; an admission that cannot make room fails
//! with the typed [`CacheError::Overloaded`], and a non-loading
//! [`SnapshotCache::try_pin`] reports cold tenants as
//! [`CacheError::Evicted`]. [`TenantServer`] routes per-tenant queries
//! through the cache with answers bit-identical to the tenant's own
//! pipeline.
//!
//! ## Self-healing maintenance
//!
//! [`SnapshotCache::scrub`] detects on-disk corruption and quarantines it;
//! [`MaintenanceSupervisor`] closes the loop unattended: a background
//! thread periodically scrubs, and drives every quarantined tenant through
//! a `Healthy → Quarantined → Repairing → Healthy | Failed` state machine
//! by re-fetching a known-good snapshot from a [`SnapshotSource`] (an
//! ordered replica set), fully CRC-verifying each candidate, and
//! publishing it through the ordinary [`SnapshotCache::register`] path —
//! so concurrent pins never observe a half-repaired tenant. Pacing is
//! injectable ([`MaintenanceConfig::scrub_interval_us`] `0` = manual
//! [`MaintenanceSupervisor::tick`]s, the mode the chaos tests drive) and
//! every transition is counted on [`CacheStatsReport`].
//!
//! ```
//! use laf_serve::{LafServer, ServeConfig};
//! # use laf_core::{LafConfig, LafPipeline};
//! # use laf_cardest::{NetConfig, TrainingSetBuilder};
//! # let (data, _) = laf_synth::EmbeddingMixtureConfig {
//! #     n_points: 200, dim: 8, clusters: 3, ..Default::default()
//! # }.generate().unwrap();
//! # let pipeline = LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
//! #     .net(NetConfig::tiny())
//! #     .training(TrainingSetBuilder { max_queries: Some(40), ..Default::default() })
//! #     .train(data).unwrap();
//! let query: Vec<f32> = pipeline.data().row(0).to_vec();
//! let server = LafServer::start(pipeline, ServeConfig::default());
//! std::thread::scope(|scope| {
//!     for _ in 0..8 {
//!         let (server, query) = (&server, &query);
//!         scope.spawn(move || {
//!             let served = server.range(query, 0.3).expect("admitted");
//!             assert!(served.value.contains(&0));
//!         });
//!     }
//! });
//! let report = server.shutdown();
//! assert_eq!(report.completed, 8);
//! ```

#![warn(missing_docs)]

mod cache;
mod config;
mod maintenance;
mod request;
mod server;
mod stats;
mod tenant;

pub use cache::{
    CacheConfig, CacheError, CacheStats, CacheStatsReport, EvictionPolicy, LruPolicy,
    PinnedSnapshot, ScrubReport, SnapshotCache,
};
pub use config::{ServeConfig, TILE};
pub use maintenance::{
    MaintenanceConfig, MaintenanceSupervisor, RepairError, ReplicaSet, SnapshotSource, TenantHealth,
};
pub use request::{QueryRequest, QueryResponse, WriteError};
pub use server::{LafServer, ServeError, Served, Ticket};
pub use stats::{OccupancyBucket, ServeStats, ServeStatsReport, OCCUPANCY_BUCKETS};
pub use tenant::TenantServer;
