//! Metric-specialized distance kernels with threshold pushdown.
//!
//! Every range query in the workspace bottoms out in a `dist(q, x) < eps`
//! comparison. Evaluated generically through [`crate::distance::Metric`],
//! the paper's primary metric (cosine) recomputes **both** vector norms on
//! every call — three full dot products per distance evaluation — even
//! though dataset rows are immutable during serving and the query is reused
//! across the whole scan. This module removes that waste without changing a
//! single result:
//!
//! * [`MetricKernel::prepare`] computes the query's norm **once per query**;
//! * [`crate::Dataset::row_norms`] caches every row's norm **once per
//!   dataset generation**;
//! * the hot predicates then need **one** dot product per row.
//!
//! # Bit-exactness contract
//!
//! Every specialized path returns *exactly* the result the generic
//! [`Metric::dist`] comparison would have produced — same bits, same
//! degenerate-vector semantics (zero-norm rows keep similarity 0), same NaN
//! behavior. The per-metric strategies:
//!
//! * **Cosine / Angular** — the scalar formula is already a function of
//!   `dot(q, x)`, `||q||` and `||x||`; the kernel evaluates the *same
//!   expression* with both norms read from caches (bit-identical by
//!   construction, since the caches store exactly `ops::norm(row)`). The
//!   O(d) work drops from 3 dot products to 1; the residual `div`/`clamp`
//!   (and `acos` for angular) are O(1) per row. A pure algebraic pushdown
//!   (`dot > t·||x||`) would be ~equally fast but cannot reproduce the
//!   scalar path's rounding at the decision boundary, so it is *not* used
//!   for the value-producing cosine family.
//! * **Euclidean / SquaredEuclidean** — in the **batch tile** the predicate
//!   is pushed down into the dot domain: `||q||² + ||x||² − 2·dot(q,x)` is
//!   compared against `eps²` (resp. `eps`) inside a certified error band.
//!   Rows that land clearly inside/outside the band are decided from the
//!   single `dot4` lane; rows within the band (a vanishing fraction) fall
//!   back to the exact subtract-form evaluation, so the decision always
//!   matches the scalar path bit-for-bit. The **scalar** predicate and
//!   distance *values* keep the subtract-form kernel: it is already a
//!   single fused pass over both vectors, so a one-query pushdown has
//!   nothing to amortize (and a dot-form value would differ in final
//!   ulps).
//! * **NegDot** — already a single dot product; the kernel merely skips the
//!   enum dispatch.
//!
//! [`MetricKernel::within4`] is the query-major mini-GEMM entry point: four
//! prepared queries are scored against one row through [`ops::dot4`], which
//! loads the row from memory once for all four lanes.

use crate::distance::Metric;
use crate::ops;

/// Relative half-width of the certified error band used by the Euclidean
/// threshold pushdown, as a multiple of `dim · f32::EPSILON` (see
/// [`MetricKernel::within`]). The factor is deliberately generous: a wider
/// band only sends more rows to the exact fallback, never changes a result.
const EUCLID_BAND_FACTOR: f64 = 8.0;

/// Relative slop covering the `eps → eps²` threshold rounding and the final
/// `sqrt` comparison of the Euclidean pushdown.
const EUCLID_THRESHOLD_SLOP: f64 = 1e-6;

/// Absolute floor of the certified error band. The relative model above
/// assumes every f32 rounding error is proportional to the value, which
/// fails once squared magnitudes reach the subnormal range (gradual
/// underflow rounds with unbounded *relative* error, and products below the
/// smallest subnormal flush to zero outright). Any comparison this close to
/// zero routes to the exact fallback instead. The floor is far above every
/// subnormal-regime error (≤ a few times 1.4e-45 per operation) yet
/// vanishingly small for realistic data, so it never costs a fast path that
/// the relative band would have taken correctly.
const EUCLID_BAND_ABS_FLOOR: f64 = (8.0 * f32::MIN_POSITIVE) as f64;

/// Magnitude ceiling for the Euclidean pushdown's fast paths. Above this the
/// scalar subtract-form evaluation can overflow `f32` to infinity while the
/// `f64` dot-form stays finite — the two would then disagree (`inf < eps` is
/// false even for thresholds the finite dot-form value passes), so such rows
/// always take the exact fallback. `f32::MAX / 8` leaves headroom for the
/// sum of squares and the error band.
const EUCLID_OVERFLOW_GUARD: f64 = (f32::MAX / 8.0) as f64;

/// A distance kernel specialized for one built-in [`Metric`].
///
/// Engines resolve this **once per engine** from their metric and then run
/// every scan through the prepared-query entry points below. The
/// [`crate::distance::DistanceMetric`] trait remains the generic fallback
/// for custom metrics and for engines (like the cover tree) whose internal
/// geometry is not a plain row scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricKernel {
    metric: Metric,
}

/// A query prepared for repeated distance evaluations: the norm work that
/// the generic path redoes per row, done once.
#[derive(Debug, Clone, Copy)]
pub struct PreparedQuery<'q> {
    q: &'q [f32],
    /// `ops::norm(q)` (bit-identical — computed as `dot(q,q).sqrt()`).
    norm: f32,
}

impl<'q> PreparedQuery<'q> {
    /// The query vector this preparation belongs to.
    pub fn query(&self) -> &'q [f32] {
        self.q
    }

    /// The query's L2 norm.
    pub fn norm(&self) -> f32 {
        self.norm
    }
}

/// A query prepared for a fixed-threshold range predicate: on top of
/// [`PreparedQuery`], the threshold constants of the Euclidean pushdown are
/// precomputed so the per-row epilogue is branch-cheap.
#[derive(Debug, Clone, Copy)]
pub struct RangeProbe<'q> {
    q: &'q [f32],
    norm: f32,
    /// `dot(q, q)` — the squared norm used by the Euclidean pushdown.
    sq: f32,
    eps: f32,
    /// Fast-accept threshold in the squared-distance domain (f64; Euclidean
    /// family only).
    accept_below: f64,
    /// Fast-reject threshold in the squared-distance domain (f64; Euclidean
    /// family only).
    reject_above: f64,
}

impl<'q> RangeProbe<'q> {
    /// The query vector this probe belongs to.
    pub fn query(&self) -> &'q [f32] {
        self.q
    }

    /// The range threshold the probe was prepared for.
    pub fn eps(&self) -> f32 {
        self.eps
    }
}

/// The exact expression of [`ops::cosine_similarity`] with the two norms
/// supplied instead of recomputed: bit-identical given `na == norm(a)` and
/// `nb == norm(b)`.
#[inline]
fn cosine_sim_from_dot(dot: f32, na: f32, nb: f32) -> f32 {
    if na <= 1e-12 || nb <= 1e-12 {
        return 0.0;
    }
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

impl MetricKernel {
    /// Specialize for `metric`.
    pub fn new(metric: Metric) -> Self {
        Self { metric }
    }

    /// The metric this kernel is specialized for.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Prepare `q` for repeated [`MetricKernel::dist`] evaluations (one dot
    /// product, amortized over the whole scan).
    pub fn prepare<'q>(&self, q: &'q [f32]) -> PreparedQuery<'q> {
        PreparedQuery {
            q,
            norm: ops::dot(q, q).sqrt(),
        }
    }

    /// [`MetricKernel::prepare`] with the query's norm supplied by the
    /// caller, for queries that are themselves cached dataset rows (k-means
    /// assignment sweeps prepare every row against the current centroids).
    ///
    /// `norm` must be bit-identical to `ops::norm(q)` — e.g. read from
    /// [`crate::Dataset::row_norms`] — or the bit-exactness contract breaks.
    pub fn prepare_with_norm<'q>(&self, q: &'q [f32], norm: f32) -> PreparedQuery<'q> {
        PreparedQuery { q, norm }
    }

    /// Prepare `q` for repeated [`MetricKernel::within`] /
    /// [`MetricKernel::within4`] predicates against threshold `eps`.
    pub fn probe<'q>(&self, q: &'q [f32], eps: f32) -> RangeProbe<'q> {
        let sq = ops::dot(q, q);
        let (accept_below, reject_above) = match self.metric {
            Metric::Euclidean | Metric::SquaredEuclidean => {
                let t = if matches!(self.metric, Metric::Euclidean) {
                    (eps as f64) * (eps as f64)
                } else {
                    eps as f64
                };
                (
                    t * (1.0 - EUCLID_THRESHOLD_SLOP),
                    t * (1.0 + EUCLID_THRESHOLD_SLOP),
                )
            }
            _ => (0.0, 0.0),
        };
        RangeProbe {
            q,
            norm: sq.sqrt(),
            sq,
            eps,
            accept_below,
            reject_above,
        }
    }

    /// Distance from a prepared query to row `x` with cached norm `x_norm`,
    /// bit-identical to `self.metric().dist(prepared.query(), x)`.
    ///
    /// `x_norm` must be the row's L2 norm as produced by
    /// [`crate::Dataset::row_norms`] (i.e. bit-identical to
    /// `ops::norm(x)`); it is ignored by the metrics that do not need it.
    #[inline]
    pub fn dist(&self, prepared: &PreparedQuery<'_>, x: &[f32], x_norm: f32) -> f32 {
        match self.metric {
            Metric::Cosine => {
                1.0 - cosine_sim_from_dot(ops::dot(prepared.q, x), prepared.norm, x_norm)
            }
            Metric::Angular => {
                cosine_sim_from_dot(ops::dot(prepared.q, x), prepared.norm, x_norm)
                    .clamp(-1.0, 1.0)
                    .acos()
                    / std::f32::consts::PI
            }
            Metric::Euclidean => ops::squared_euclidean(prepared.q, x).sqrt(),
            Metric::SquaredEuclidean => ops::squared_euclidean(prepared.q, x),
            Metric::NegDot => -ops::dot(prepared.q, x),
        }
    }

    /// The range predicate `self.metric().dist(probe.query(), x) < probe.eps()`,
    /// decided from a single dot product wherever the metric allows and
    /// guaranteed to agree with the generic evaluation bit-for-bit.
    ///
    /// The Euclidean family evaluates the exact subtract-form expression
    /// here: it is already a single fused pass over both vectors, so the
    /// dot-form pushdown has nothing to amortize in a one-query scan (it
    /// pays off in [`MetricKernel::within4`], where `dot4` shares the row
    /// load across four queries).
    ///
    /// `x_norm`/`x_sq` must come from [`crate::Dataset::row_norms`] (or equal
    /// `ops::norm(x)` / `ops::dot(x, x)` bit-for-bit).
    #[inline]
    pub fn within(&self, probe: &RangeProbe<'_>, x: &[f32], x_norm: f32, _x_sq: f32) -> bool {
        match self.metric {
            Metric::Euclidean => ops::squared_euclidean(probe.q, x).sqrt() < probe.eps,
            Metric::SquaredEuclidean => ops::squared_euclidean(probe.q, x) < probe.eps,
            _ => self.dot_decide(probe, ops::dot(probe.q, x), x_norm),
        }
    }

    /// Four range predicates against one row — the query-major mini-GEMM
    /// path. Each lane is decided exactly as [`MetricKernel::within`] would,
    /// but the row is streamed from memory once for all four probes via
    /// [`ops::dot4`].
    #[inline]
    pub fn within4(
        &self,
        probes: &[RangeProbe<'_>; 4],
        x: &[f32],
        x_norm: f32,
        x_sq: f32,
    ) -> [bool; 4] {
        let dots = ops::dot4(probes[0].q, probes[1].q, probes[2].q, probes[3].q, x);
        let mut out = [false; 4];
        match self.metric {
            Metric::Euclidean | Metric::SquaredEuclidean => {
                for lane in 0..4 {
                    out[lane] = self.euclid_decide(&probes[lane], dots[lane], x, x_sq);
                }
            }
            _ => {
                for lane in 0..4 {
                    out[lane] = self.dot_decide(&probes[lane], dots[lane], x_norm);
                }
            }
        }
        out
    }

    /// Decide a cosine/angular/neg-dot predicate from the precomputed dot.
    /// These metrics are exact functions of `(dot, ||q||, ||x||)`, so the
    /// decision replicates the generic expression bit-for-bit.
    #[inline]
    fn dot_decide(&self, probe: &RangeProbe<'_>, dot: f32, x_norm: f32) -> bool {
        match self.metric {
            Metric::Cosine => 1.0 - cosine_sim_from_dot(dot, probe.norm, x_norm) < probe.eps,
            Metric::Angular => {
                cosine_sim_from_dot(dot, probe.norm, x_norm)
                    .clamp(-1.0, 1.0)
                    .acos()
                    / std::f32::consts::PI
                    < probe.eps
            }
            Metric::NegDot => -dot < probe.eps,
            Metric::Euclidean | Metric::SquaredEuclidean => {
                unreachable!("euclidean predicates go through euclid_decide")
            }
        }
    }

    /// Decide a Euclidean-family predicate from the precomputed dot, with the
    /// certified error band: clear accepts/rejects come from the dot-form
    /// squared distance, boundary rows re-evaluate the exact subtract-form
    /// expression, so the result always equals the generic comparison.
    #[inline]
    fn euclid_decide(&self, probe: &RangeProbe<'_>, dot: f32, x: &[f32], x_sq: f32) -> bool {
        // Distances are non-negative (or NaN): a non-positive or NaN eps can
        // never admit a row, exactly as the generic `dist < eps` would decide.
        if probe.eps <= 0.0 || probe.eps.is_nan() {
            return false;
        }
        let q_sq = probe.sq as f64;
        let r_sq = x_sq as f64;
        let d = dot as f64;
        let se_dot = q_sq + r_sq - 2.0 * d;
        // Conservative bound on |se_dot - se_subtract|: both forms err from
        // the true value by at most ~dim·ε·magnitude. Magnitudes near f32
        // overflow skip the fast paths entirely (see EUCLID_OVERFLOW_GUARD).
        let magnitude = q_sq + r_sq + 2.0 * d.abs();
        if magnitude < EUCLID_OVERFLOW_GUARD {
            let tol =
                EUCLID_BAND_FACTOR * (x.len() as f64 + 4.0) * (f32::EPSILON as f64) * magnitude
                    + EUCLID_BAND_ABS_FLOOR;
            if se_dot + tol < probe.accept_below {
                return true;
            }
            if se_dot - tol > probe.reject_above {
                return false;
            }
        }
        // Boundary band (or NaN anywhere): decide exactly like the scalar
        // path.
        let se = ops::squared_euclidean(probe.q, x);
        match self.metric {
            Metric::Euclidean => se.sqrt() < probe.eps,
            Metric::SquaredEuclidean => se < probe.eps,
            _ => unreachable!("only the euclidean family reaches the band fallback"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    fn rows(dim: usize, n: usize, scale: f32) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * dim + j) as f32 * 0.31).sin() * scale)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn dist_is_bit_identical_to_generic_for_every_metric() {
        for dim in [1usize, 3, 8, 17] {
            let data = Dataset::from_rows(rows(dim, 12, 2.5)).unwrap();
            let norms = data.row_norms();
            let q: Vec<f32> = (0..dim).map(|j| (j as f32 * 0.7).cos()).collect();
            for metric in Metric::ALL {
                let kernel = MetricKernel::new(metric);
                let prep = kernel.prepare(&q);
                for (i, row) in data.rows().enumerate() {
                    assert_eq!(
                        kernel.dist(&prep, row, norms.norm(i)).to_bits(),
                        metric.dist(&q, row).to_bits(),
                        "{metric:?} dim {dim} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn within_agrees_with_generic_predicate_including_degenerate_rows() {
        for dim in [2usize, 5, 16] {
            let mut all = rows(dim, 20, 1.0);
            all.push(vec![0.0; dim]); // zero vector: similarity-0 semantics
            all.push(vec![1e-13; dim]); // just below the degenerate cutoff
            let data = Dataset::from_rows(all).unwrap();
            let norms = data.row_norms();
            let q: Vec<f32> = (0..dim).map(|j| (j as f32 * 1.3).sin() * 3.0).collect();
            for metric in Metric::ALL {
                let kernel = MetricKernel::new(metric);
                for eps in [-0.5f32, 0.0, 1e-6, 0.3, 1.0, 2.0, f32::INFINITY, f32::NAN] {
                    let probe = kernel.probe(&q, eps);
                    for (i, row) in data.rows().enumerate() {
                        assert_eq!(
                            kernel.within(&probe, row, norms.norm(i), norms.sq(i)),
                            metric.dist(&q, row) < eps,
                            "{metric:?} dim {dim} row {i} eps {eps}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn within4_matches_scalar_within() {
        let dim = 9;
        let data = Dataset::from_rows(rows(dim, 15, 1.5)).unwrap();
        let norms = data.row_norms();
        let queries = rows(dim, 4, 0.8);
        for metric in Metric::ALL {
            let kernel = MetricKernel::new(metric);
            let eps = match metric {
                Metric::NegDot => -0.1,
                _ => 0.6,
            };
            let probes = [
                kernel.probe(&queries[0], eps),
                kernel.probe(&queries[1], eps),
                kernel.probe(&queries[2], eps),
                kernel.probe(&queries[3], eps),
            ];
            for (i, row) in data.rows().enumerate() {
                let block = kernel.within4(&probes, row, norms.norm(i), norms.sq(i));
                for (lane, probe) in probes.iter().enumerate() {
                    assert_eq!(
                        block[lane],
                        kernel.within(probe, row, norms.norm(i), norms.sq(i)),
                        "{metric:?} row {i} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn euclid_boundary_rows_fall_back_to_exact_evaluation() {
        // Construct a query/row pair whose distance sits exactly at eps: the
        // batch tile's pushdown band must route it to the subtract-form
        // fallback and agree with the generic comparison (the scalar
        // predicate evaluates the exact form directly).
        let q = vec![0.0f32, 0.0];
        let row = vec![3.0f32, 4.0];
        let data = Dataset::from_rows(vec![row.clone()]).unwrap();
        let norms = data.row_norms();
        for metric in [Metric::Euclidean, Metric::SquaredEuclidean] {
            let kernel = MetricKernel::new(metric);
            let exact_dist = metric.dist(&q, &row); // 5 resp. 25
            for eps in [exact_dist, exact_dist + 1e-6, exact_dist - 1e-6] {
                let probe = kernel.probe(&q, eps);
                assert_eq!(
                    kernel.within(&probe, &row, norms.norm(0), norms.sq(0)),
                    exact_dist < eps,
                    "{metric:?} scalar eps {eps}"
                );
                let probes = [probe, probe, probe, probe];
                let lanes = kernel.within4(&probes, &row, norms.norm(0), norms.sq(0));
                assert_eq!(lanes, [exact_dist < eps; 4], "{metric:?} tile eps {eps}");
            }
        }
    }

    #[test]
    fn euclid_tile_agrees_when_subtract_form_overflows_f32() {
        // The f32 subtract-form squared distance overflows to inf here while
        // the f64 dot-form stays finite (~1.3e39 < eps² = 1e40): the fast
        // accept must NOT fire — the generic path sees inf < 1e20 == false.
        let q = vec![1.8e19f32, 0.0];
        let row = vec![-1.8e19f32, 0.0];
        let data = Dataset::from_rows(vec![row.clone()]).unwrap();
        let norms = data.row_norms();
        for (metric, eps) in [
            (Metric::Euclidean, 1e20f32),
            (Metric::SquaredEuclidean, f32::MAX),
        ] {
            let kernel = MetricKernel::new(metric);
            let expected = metric.dist(&q, &row) < eps;
            let probe = kernel.probe(&q, eps);
            assert_eq!(
                kernel.within(&probe, &row, norms.norm(0), norms.sq(0)),
                expected,
                "{metric:?} scalar"
            );
            let probes = [probe, probe, probe, probe];
            let lanes = kernel.within4(&probes, &row, norms.norm(0), norms.sq(0));
            assert_eq!(lanes, [expected; 4], "{metric:?} tile");
        }
    }

    #[test]
    fn probe_and_prepared_accessors() {
        let q = [3.0f32, 4.0];
        let kernel = MetricKernel::new(Metric::Cosine);
        assert_eq!(kernel.metric(), Metric::Cosine);
        let prep = kernel.prepare(&q);
        assert_eq!(prep.query(), &q);
        assert_eq!(prep.norm(), 5.0);
        let probe = kernel.probe(&q, 0.25);
        assert_eq!(probe.query(), &q);
        assert_eq!(probe.eps(), 0.25);
    }
}
