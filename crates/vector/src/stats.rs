//! Dataset-level statistics.
//!
//! The synthetic generators in `laf-synth` are only useful stand-ins if the
//! data they produce has the gross statistical shape of the corpora the
//! paper uses: unit norms, a bimodal-ish pairwise cosine-distance profile
//! (tight within clusters, near-orthogonal across), and a bounded distance
//! range. This module computes those summaries so tests and the experiment
//! harness can assert them rather than assume them.

use crate::dataset::Dataset;
use crate::distance::Metric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Summary of a sample of pairwise distances within a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairwiseDistanceStats {
    /// Metric the distances were computed under.
    pub metric: Metric,
    /// Number of sampled pairs.
    pub pairs: usize,
    /// Minimum sampled distance.
    pub min: f32,
    /// Mean sampled distance.
    pub mean: f32,
    /// Maximum sampled distance.
    pub max: f32,
    /// Standard deviation of the sampled distances.
    pub std_dev: f32,
    /// Deciles (10 values: the 10th, 20th, …, 100th percentiles).
    pub deciles: Vec<f32>,
}

/// Norm statistics of the rows of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormStats {
    /// Smallest row norm.
    pub min: f32,
    /// Mean row norm.
    pub mean: f32,
    /// Largest row norm.
    pub max: f32,
}

/// Compute norm statistics for every row. Returns `None` for an empty
/// dataset.
pub fn norm_stats(data: &Dataset) -> Option<NormStats> {
    if data.is_empty() {
        return None;
    }
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    let mut sum = 0.0f64;
    for row in data.rows() {
        let n = crate::ops::norm(row);
        min = min.min(n);
        max = max.max(n);
        sum += n as f64;
    }
    Some(NormStats {
        min,
        mean: (sum / data.len() as f64) as f32,
        max,
    })
}

/// Sample `pairs` random point pairs (without self-pairs) and summarize their
/// distances under `metric`. Returns `None` when the dataset has fewer than
/// two rows or `pairs == 0`.
pub fn pairwise_distance_stats(
    data: &Dataset,
    metric: Metric,
    pairs: usize,
    seed: u64,
) -> Option<PairwiseDistanceStats> {
    if data.len() < 2 || pairs == 0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut distances: Vec<f32> = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        let i = rng.gen_range(0..data.len());
        let mut j = rng.gen_range(0..data.len());
        while j == i {
            j = rng.gen_range(0..data.len());
        }
        distances.push(metric.dist(data.row(i), data.row(j)));
    }
    distances.sort_by(f32::total_cmp);
    let n = distances.len();
    let mean = distances.iter().map(|&d| d as f64).sum::<f64>() / n as f64;
    let var = distances
        .iter()
        .map(|&d| (d as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    let deciles = (1..=10)
        .map(|k| distances[((n * k) / 10).saturating_sub(1)])
        .collect();
    Some(PairwiseDistanceStats {
        metric,
        pairs: n,
        min: distances[0],
        mean: mean as f32,
        max: distances[n - 1],
        std_dev: var.sqrt() as f32,
        deciles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let rows: Vec<Vec<f32>> = (0..50)
            .map(|i| {
                let a = i as f32 * 0.12;
                vec![a.cos(), a.sin(), 0.1 * (i as f32 % 3.0)]
            })
            .collect();
        let mut d = Dataset::from_rows(rows).unwrap();
        d.normalize();
        d
    }

    #[test]
    fn norm_stats_of_normalized_data_are_one() {
        let d = data();
        let stats = norm_stats(&d).unwrap();
        assert!((stats.min - 1.0).abs() < 1e-4);
        assert!((stats.mean - 1.0).abs() < 1e-4);
        assert!((stats.max - 1.0).abs() < 1e-4);
        assert!(norm_stats(&Dataset::new(3).unwrap()).is_none());
    }

    #[test]
    fn pairwise_stats_are_ordered_and_bounded_for_cosine() {
        let d = data();
        let stats = pairwise_distance_stats(&d, Metric::Cosine, 500, 1).unwrap();
        assert_eq!(stats.pairs, 500);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
        assert!(stats.min >= -1e-4);
        assert!(stats.max <= 2.0 + 1e-4);
        assert_eq!(stats.deciles.len(), 10);
        assert!(stats.deciles.windows(2).all(|w| w[0] <= w[1] + 1e-6));
        assert!((stats.deciles[9] - stats.max).abs() < 1e-6);
        assert!(stats.std_dev >= 0.0);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let d = data();
        assert!(pairwise_distance_stats(&d, Metric::Cosine, 0, 1).is_none());
        let single = Dataset::from_rows(vec![vec![1.0f32, 0.0]]).unwrap();
        assert!(pairwise_distance_stats(&single, Metric::Cosine, 10, 1).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = data();
        let a = pairwise_distance_stats(&d, Metric::Cosine, 100, 9).unwrap();
        let b = pairwise_distance_stats(&d, Metric::Cosine, 100, 9).unwrap();
        assert_eq!(a, b);
    }
}
