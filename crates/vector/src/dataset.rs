//! The [`Dataset`] container: a contiguous row-major `f32` matrix.
//!
//! Every clustering algorithm and every range-query engine in this workspace
//! consumes data through this type. Rows are stored contiguously so that the
//! distance kernels in [`crate::ops`] operate on cache-friendly slices.

use crate::error::VectorError;
use crate::ops;
#[cfg(target_endian = "little")]
use memmap2::Mmap;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// The storage behind a [`Dataset`]'s flat `f32` buffer: an owned `Vec<f32>`
/// (every mutating constructor), a reference-counted window into a shared
/// heap buffer (shard views over one logical dataset — see
/// [`Dataset::slice_rows`]), or a borrowed window into a memory-mapped
/// snapshot file (zero-copy warm starts — see [`crate::mapped`]).
///
/// Every accessor on [`Dataset`] goes through [`DataBacking::as_slice`], so
/// distance kernels, engines and clustering code are oblivious to which
/// variant they are reading. Mutating a mapped or shared dataset
/// transparently promotes it to an owned copy first (copy-on-write); the
/// serving path never mutates, so it stays zero-copy.
#[derive(Clone, Debug)]
pub enum DataBacking {
    /// Heap-owned flat buffer (the classic backing).
    Owned(Vec<f32>),
    /// A window into a reference-counted heap buffer. This is how N shard
    /// views of one logical dataset share a single allocation: the full
    /// dataset and every [`Dataset::slice_rows`] view bump the same `Arc`.
    SharedOwned(SharedSlice),
    /// A validated window into a shared read-only file mapping. Only
    /// constructed on little-endian targets (the on-disk format is
    /// little-endian `f32`, so reinterpreting the mapped bytes is only valid
    /// there) by [`crate::mapped::dataset_from_map`], which verifies
    /// alignment and bounds before the window exists — [`MappedSlice`]'s
    /// fields are private, so safe downstream code cannot forge an
    /// unvalidated one.
    #[cfg(target_endian = "little")]
    Mapped(MappedSlice),
}

/// A bounds-checked `f32` window into a reference-counted heap buffer.
///
/// Fields are private for the same reason as [`MappedSlice`]: every value is
/// constructed through [`Dataset::into_shared`] / [`Dataset::slice_rows`],
/// which guarantee `offset + len <= buf.len()`.
#[derive(Clone, Debug)]
pub struct SharedSlice {
    /// The shared allocation keeping the window alive.
    buf: Arc<Vec<f32>>,
    /// Offset of the first element within `buf`, in `f32` elements.
    offset: usize,
    /// Number of `f32` elements in the window.
    len: usize,
}

impl SharedSlice {
    /// The shared `f32` view.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.buf[self.offset..self.offset + self.len]
    }
}

/// A bounds- and alignment-checked `f32` window into an [`Mmap`].
///
/// Deliberately opaque: the `unsafe` reinterpret in
/// [`MappedSlice::as_slice`] is sound only because every value of this type
/// went through [`crate::mapped::dataset_from_map`]'s validation, so the
/// fields are private and there is no public constructor.
#[cfg(target_endian = "little")]
#[derive(Clone, Debug)]
pub struct MappedSlice {
    /// The file mapping keeping the window alive.
    map: Arc<Mmap>,
    /// Byte offset of the first `f32` within the mapping (4-byte aligned,
    /// enforced at construction).
    offset: usize,
    /// Number of `f32` elements in the window.
    len: usize,
}

#[cfg(target_endian = "little")]
impl MappedSlice {
    /// The mapped `f32` view.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: construction (crate::mapped::dataset_from_map) verified
        // that `offset..offset + len * 4` lies inside the mapping and that
        // `base + offset` is 4-byte aligned; the Arc keeps the mapping alive
        // for the borrow, the mapping is immutable, and every bit pattern is
        // a valid f32.
        unsafe {
            std::slice::from_raw_parts(self.map.as_ptr().add(self.offset) as *const f32, self.len)
        }
    }
}

impl DataBacking {
    /// The flat `f32` view, whichever variant backs it.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        match self {
            DataBacking::Owned(v) => v,
            DataBacking::SharedOwned(window) => window.as_slice(),
            #[cfg(target_endian = "little")]
            DataBacking::Mapped(window) => window.as_slice(),
        }
    }

    /// `true` for the memory-mapped variant.
    pub fn is_mapped(&self) -> bool {
        match self {
            DataBacking::Owned(_) | DataBacking::SharedOwned(_) => false,
            #[cfg(target_endian = "little")]
            DataBacking::Mapped(_) => true,
        }
    }

    /// `true` for the reference-counted shared-heap variant.
    pub fn is_shared(&self) -> bool {
        matches!(self, DataBacking::SharedOwned(_))
    }
}

/// Per-row L2 norms of a [`Dataset`], built lazily by [`Dataset::row_norms`]
/// and cached until the next mutation.
///
/// Both the squared norm (`dot(row, row)`, used by the Euclidean threshold
/// pushdown) and the norm itself (`dot(row, row).sqrt()`, bit-identical to
/// [`ops::norm`], used by the cosine-family kernels) are stored, so the
/// specialized distance kernels never recompute either inside a scan loop.
#[derive(Debug)]
pub struct RowNorms {
    sq: Vec<f32>,
    norms: Vec<f32>,
}

impl RowNorms {
    /// L2 norm of row `i`, bit-identical to `ops::norm(dataset.row(i))`.
    #[inline]
    pub fn norm(&self, i: usize) -> f32 {
        self.norms[i]
    }

    /// Squared L2 norm of row `i`, bit-identical to
    /// `ops::dot(dataset.row(i), dataset.row(i))`.
    #[inline]
    pub fn sq(&self, i: usize) -> f32 {
        self.sq[i]
    }

    /// All row norms, indexed by row.
    #[inline]
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// All squared row norms, indexed by row.
    #[inline]
    pub fn sq_norms(&self) -> &[f32] {
        &self.sq
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// `true` when the cache covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }
}

/// A dense, row-major matrix of `f32` vectors.
///
/// Invariants:
/// * `data.as_slice().len() == len * dim`
/// * `dim > 0` once the first row has been pushed.
/// * `norms`, when populated, caches the current rows' L2 norms (every
///   mutating path funnels through the private `owned_mut` choke point,
///   which clears it).
#[derive(Clone, Debug)]
pub struct Dataset {
    dim: usize,
    len: usize,
    data: DataBacking,
    /// Lazily-built per-row norm cache. `Arc` keeps clones cheap; `OnceLock`
    /// makes the lazy build race-free across concurrent readers.
    norms: OnceLock<Arc<RowNorms>>,
}

/// Semantic equality: same shape, same flat contents — an owned dataset and
/// a mapped dataset over the same bytes compare equal.
impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.len == other.len && self.as_flat() == other.as_flat()
    }
}

/// Serializes as `{dim, len, data}` with the flat buffer materialized, the
/// same shape the pre-backing derive produced, so JSON fixtures are
/// unaffected by which variant backs the dataset.
impl Serialize for Dataset {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("dim".to_string(), self.dim.to_value()),
            ("len".to_string(), self.len.to_value()),
            (
                "data".to_string(),
                serde::value::Value::Array(self.as_flat().iter().map(|x| x.to_value()).collect()),
            ),
        ])
    }
}

impl Deserialize for Dataset {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::de::Error::expected("object", v))?;
        let field = |name: &str| {
            serde::value::find(obj, name)
                .ok_or_else(|| serde::de::Error::msg(format!("missing Dataset field `{name}`")))
        };
        let dim = usize::from_value(field("dim")?)?;
        let len = usize::from_value(field("len")?)?;
        let data = Vec::<f32>::from_value(field("data")?)?;
        let ds = Dataset::from_flat(dim, data)
            .map_err(|e| serde::de::Error::msg(format!("invalid Dataset: {e}")))?;
        if ds.len() != len {
            return Err(serde::de::Error::msg(format!(
                "Dataset `len` field says {len} rows but the buffer holds {}",
                ds.len()
            )));
        }
        Ok(ds)
    }
}

impl Dataset {
    /// Create an empty dataset with the given dimensionality.
    ///
    /// # Errors
    /// Returns [`VectorError::InvalidParameter`] if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, VectorError> {
        if dim == 0 {
            return Err(VectorError::InvalidParameter(
                "dataset dimensionality must be positive".to_string(),
            ));
        }
        Ok(Self {
            dim,
            len: 0,
            data: DataBacking::Owned(Vec::new()),
            norms: OnceLock::new(),
        })
    }

    /// Create an empty dataset with capacity pre-reserved for `rows` rows.
    pub fn with_capacity(dim: usize, rows: usize) -> Result<Self, VectorError> {
        let mut d = Self::new(dim)?;
        d.owned_mut().reserve(rows * dim);
        Ok(d)
    }

    /// Build a dataset from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] if the buffer length is not
    /// a multiple of `dim`, or [`VectorError::InvalidParameter`] if `dim == 0`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<Self, VectorError> {
        if dim == 0 {
            return Err(VectorError::InvalidParameter(
                "dataset dimensionality must be positive".to_string(),
            ));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(VectorError::DimensionMismatch {
                expected: dim,
                found: data.len() % dim,
            });
        }
        let len = data.len() / dim;
        Ok(Self {
            dim,
            len,
            data: DataBacking::Owned(data),
            norms: OnceLock::new(),
        })
    }

    /// Build a dataset over a window of a shared file mapping, without
    /// copying. Used by [`crate::mapped::dataset_from_map`], which performs
    /// the bounds/alignment validation this constructor relies on.
    #[cfg(target_endian = "little")]
    pub(crate) fn from_mapped(
        dim: usize,
        map: Arc<Mmap>,
        byte_offset: usize,
        floats: usize,
    ) -> Self {
        debug_assert!(dim > 0 && floats.is_multiple_of(dim));
        Self {
            dim,
            len: floats / dim,
            data: DataBacking::Mapped(MappedSlice {
                map,
                offset: byte_offset,
                len: floats,
            }),
            norms: OnceLock::new(),
        }
    }

    /// The storage variant backing this dataset (owned or mapped).
    pub fn backing(&self) -> &DataBacking {
        &self.data
    }

    /// `true` when the flat buffer is served zero-copy from a file mapping
    /// rather than an owned heap allocation.
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Per-row L2 norms, built on first use and cached until the next
    /// mutation.
    ///
    /// The cache is what turns the specialized distance kernels' cosine
    /// evaluation into a single dot product: dataset rows are immutable while
    /// serving, so `||x||` is computed once per row per dataset generation
    /// instead of once per distance evaluation. Any mutating accessor
    /// (including the copy-on-write promotion of a mapped backing) clears the
    /// cache; the next `row_norms` call rebuilds it against the new rows.
    pub fn row_norms(&self) -> &RowNorms {
        self.norms.get_or_init(|| {
            let mut sq = Vec::with_capacity(self.len);
            let mut norms = Vec::with_capacity(self.len);
            for row in self.rows() {
                let s = ops::dot(row, row);
                sq.push(s);
                norms.push(s.sqrt());
            }
            Arc::new(RowNorms { sq, norms })
        })
    }

    /// `true` when the norm cache is currently populated (diagnostics/tests).
    pub fn has_norm_cache(&self) -> bool {
        self.norms.get().is_some()
    }

    /// Mutable access to the owned buffer, promoting a mapped or shared
    /// backing to an owned copy first (copy-on-write). Drops the norm cache:
    /// the rows are about to change, so cached norms would go stale.
    fn owned_mut(&mut self) -> &mut Vec<f32> {
        self.norms.take();
        if !matches!(self.data, DataBacking::Owned(_)) {
            self.data = DataBacking::Owned(self.data.as_slice().to_vec());
        }
        match &mut self.data {
            DataBacking::Owned(v) => v,
            _ => unreachable!("non-owned backing promoted above"),
        }
    }

    /// Build a dataset from an iterator of rows.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] if any row differs in length
    /// from the first row, or [`VectorError::EmptyDataset`] if the iterator is
    /// empty.
    pub fn from_rows<I, R>(rows: I) -> Result<Self, VectorError>
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f32]>,
    {
        let mut iter = rows.into_iter();
        let first = iter.next().ok_or(VectorError::EmptyDataset)?;
        let first = first.as_ref();
        let dim = first.len();
        let mut ds = Dataset::new(dim)?;
        ds.push(first)?;
        for row in iter {
            ds.push(row.as_ref())?;
        }
        Ok(ds)
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the dataset has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of every row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow row `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`. Use [`Dataset::try_row`] for a checked
    /// variant.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data.as_slice()[i * self.dim..(i + 1) * self.dim]
    }

    /// Checked row access.
    pub fn try_row(&self, i: usize) -> Result<&[f32], VectorError> {
        if i >= self.len {
            return Err(VectorError::RowOutOfBounds {
                index: i,
                len: self.len,
            });
        }
        Ok(self.row(i))
    }

    /// Mutable access to row `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let dim = self.dim;
        &mut self.owned_mut()[i * dim..(i + 1) * dim]
    }

    /// Append a row.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] if `row.len() != self.dim()`.
    pub fn push(&mut self, row: &[f32]) -> Result<(), VectorError> {
        if row.len() != self.dim {
            return Err(VectorError::DimensionMismatch {
                expected: self.dim,
                found: row.len(),
            });
        }
        self.owned_mut().extend_from_slice(row);
        self.len += 1;
        Ok(())
    }

    /// Append every row of `other`.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] if dimensionalities differ.
    pub fn extend_from(&mut self, other: &Dataset) -> Result<(), VectorError> {
        if other.dim != self.dim {
            return Err(VectorError::DimensionMismatch {
                expected: self.dim,
                found: other.dim,
            });
        }
        self.owned_mut().extend_from_slice(other.as_flat());
        self.len += other.len;
        Ok(())
    }

    /// Iterate over rows as slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.as_slice().chunks_exact(self.dim)
    }

    /// The flat row-major buffer backing this dataset.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Consume the dataset and return the flat buffer (copying if it was
    /// memory-mapped or shared).
    pub fn into_flat(self) -> Vec<f32> {
        match self.data {
            DataBacking::Owned(v) => v,
            other => other.as_slice().to_vec(),
        }
    }

    /// Convert an owned backing into a reference-counted shared one without
    /// copying, so [`Dataset::slice_rows`] views can share the allocation.
    /// Mapped and already-shared backings are returned unchanged; the norm
    /// cache survives (the rows do not change).
    pub fn into_shared(mut self) -> Self {
        if let DataBacking::Owned(v) = self.data {
            let len = v.len();
            self.data = DataBacking::SharedOwned(SharedSlice {
                buf: Arc::new(v),
                offset: 0,
                len,
            });
        }
        self
    }

    /// A view of `rows` consecutive rows starting at row `start`, as its own
    /// [`Dataset`]. This is the shard-view primitive: over a shared backing
    /// ([`Dataset::into_shared`]) or a mapped backing the view costs one
    /// reference-count bump and no copy; over a plain owned backing the rows
    /// are copied.
    ///
    /// # Errors
    /// Returns [`VectorError::RowOutOfBounds`] if `start + rows` exceeds the
    /// dataset length.
    pub fn slice_rows(&self, start: usize, rows: usize) -> Result<Dataset, VectorError> {
        let end = start.checked_add(rows).ok_or(VectorError::RowOutOfBounds {
            index: usize::MAX,
            len: self.len,
        })?;
        if end > self.len {
            return Err(VectorError::RowOutOfBounds {
                index: end,
                len: self.len,
            });
        }
        let data = match &self.data {
            DataBacking::Owned(v) => {
                DataBacking::Owned(v[start * self.dim..end * self.dim].to_vec())
            }
            DataBacking::SharedOwned(s) => DataBacking::SharedOwned(SharedSlice {
                buf: Arc::clone(&s.buf),
                offset: s.offset + start * self.dim,
                len: rows * self.dim,
            }),
            // A row boundary is a multiple of `dim * 4` bytes past a 4-byte
            // aligned offset, so the view stays alignment-valid.
            #[cfg(target_endian = "little")]
            DataBacking::Mapped(m) => DataBacking::Mapped(MappedSlice {
                map: Arc::clone(&m.map),
                offset: m.offset + start * self.dim * std::mem::size_of::<f32>(),
                len: rows * self.dim,
            }),
        };
        Ok(Dataset {
            dim: self.dim,
            len: rows,
            data,
            norms: OnceLock::new(),
        })
    }

    /// L2-normalize every row in place (rows with near-zero norm are left
    /// unchanged). Returns the number of rows that could not be normalized.
    pub fn normalize(&mut self) -> usize {
        let (dim, len) = (self.dim, self.len);
        let data = self.owned_mut();
        let mut degenerate = 0;
        for i in 0..len {
            let row = &mut data[i * dim..(i + 1) * dim];
            if ops::normalize_in_place(row) <= 1e-12 {
                degenerate += 1;
            }
        }
        degenerate
    }

    /// `true` when every row has unit L2 norm within `tol`.
    pub fn is_normalized(&self, tol: f32) -> bool {
        self.rows().all(|r| (ops::norm(r) - 1.0).abs() <= tol)
    }

    /// Select the rows at `indices` (in order) into a new dataset.
    ///
    /// # Errors
    /// Returns [`VectorError::RowOutOfBounds`] for any invalid index.
    pub fn select(&self, indices: &[usize]) -> Result<Dataset, VectorError> {
        let mut out = Dataset::with_capacity(self.dim, indices.len())?;
        for &i in indices {
            out.push(self.try_row(i)?)?;
        }
        Ok(out)
    }

    /// Uniformly sample `count` distinct rows without replacement.
    ///
    /// If `count >= len`, a copy of the whole dataset (in shuffled order) is
    /// returned. The returned vector contains the chosen original indices in
    /// the order they appear in the sample.
    pub fn sample<R: Rng>(&self, count: usize, rng: &mut R) -> (Dataset, Vec<usize>) {
        let mut indices: Vec<usize> = (0..self.len).collect();
        indices.shuffle(rng);
        indices.truncate(count.min(self.len));
        let ds = self
            .select(&indices)
            .expect("indices generated from 0..len are always valid");
        (ds, indices)
    }

    /// Split into a training prefix and testing suffix after a seeded shuffle,
    /// using `train_fraction` (paper: 0.8). Returns `(train, test)`.
    pub fn train_test_split<R: Rng>(&self, train_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        let mut indices: Vec<usize> = (0..self.len).collect();
        indices.shuffle(rng);
        let n_train = ((self.len as f64) * train_fraction).round() as usize;
        let n_train = n_train.min(self.len);
        let train = self
            .select(&indices[..n_train])
            .expect("split indices are valid");
        let test = self
            .select(&indices[n_train..])
            .expect("split indices are valid");
        (train, test)
    }
}

/// Incremental builder used by the synthetic generators.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    inner: Dataset,
}

impl DatasetBuilder {
    /// Start building a dataset of dimensionality `dim`.
    ///
    /// # Errors
    /// Returns [`VectorError::InvalidParameter`] if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, VectorError> {
        Ok(Self {
            inner: Dataset::new(dim)?,
        })
    }

    /// Append a row.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] on a wrong-length row.
    pub fn push(&mut self, row: &[f32]) -> Result<&mut Self, VectorError> {
        self.inner.push(row)?;
        Ok(self)
    }

    /// Number of rows added so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Finish and return the dataset.
    pub fn build(self) -> Dataset {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::from_rows(vec![
            vec![1.0f32, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 4.0],
            vec![-1.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.row(2), &[3.0, 4.0]);
        assert_eq!(d.try_row(1).unwrap(), &[0.0, 2.0]);
        assert!(matches!(
            d.try_row(10),
            Err(VectorError::RowOutOfBounds { index: 10, len: 4 })
        ));
    }

    #[test]
    fn zero_dim_rejected() {
        assert!(Dataset::new(0).is_err());
        assert!(Dataset::from_flat(0, vec![]).is_err());
    }

    #[test]
    fn from_flat_checks_multiple() {
        assert!(Dataset::from_flat(3, vec![1.0; 7]).is_err());
        let d = Dataset::from_flat(3, vec![1.0; 9]).unwrap();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn from_rows_rejects_ragged_and_empty() {
        let ragged: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(Dataset::from_rows(ragged).is_err());
        let empty: Vec<Vec<f32>> = vec![];
        assert!(matches!(
            Dataset::from_rows(empty),
            Err(VectorError::EmptyDataset)
        ));
    }

    #[test]
    fn push_and_extend() {
        let mut d = Dataset::new(2).unwrap();
        d.push(&[1.0, 2.0]).unwrap();
        assert!(d.push(&[1.0]).is_err());
        let other = toy();
        d.extend_from(&other).unwrap();
        assert_eq!(d.len(), 5);
        let mismatched = Dataset::new(3).unwrap();
        assert!(d.extend_from(&mismatched).is_err());
    }

    #[test]
    fn extend_from_rejects_dim_mismatch() {
        let mut d = toy();
        let other = Dataset::from_rows(vec![vec![1.0f32, 2.0, 3.0]]).unwrap();
        assert!(d.extend_from(&other).is_err());
    }

    #[test]
    fn normalize_makes_unit_rows() {
        let mut d = toy();
        assert!(!d.is_normalized(1e-4));
        let degenerate = d.normalize();
        assert_eq!(degenerate, 0);
        assert!(d.is_normalized(1e-4));
        assert!((crate::ops::norm(d.row(2)) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_reports_degenerate_rows() {
        let mut d = Dataset::from_rows(vec![vec![0.0f32, 0.0], vec![1.0, 1.0]]).unwrap();
        assert_eq!(d.normalize(), 1);
    }

    #[test]
    fn select_and_sample() {
        let d = toy();
        let s = d.select(&[3, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[-1.0, 1.0]);
        assert!(d.select(&[99]).is_err());

        let mut rng = StdRng::seed_from_u64(7);
        let (sample, idx) = d.sample(2, &mut rng);
        assert_eq!(sample.len(), 2);
        assert_eq!(idx.len(), 2);
        assert_ne!(idx[0], idx[1]);

        let (all, idx_all) = d.sample(100, &mut rng);
        assert_eq!(all.len(), 4);
        assert_eq!(idx_all.len(), 4);
    }

    #[test]
    fn train_test_split_partitions_rows() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = d.train_test_split(0.75, &mut rng);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(train.dim(), 2);
    }

    #[test]
    fn builder_accumulates_rows() {
        let mut b = DatasetBuilder::new(3).unwrap();
        assert!(b.is_empty());
        b.push(&[1.0, 2.0, 3.0]).unwrap();
        b.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(b.len(), 2);
        let d = b.build();
        assert_eq!(d.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn rows_iterator_is_exact_size() {
        let d = toy();
        let it = d.rows();
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn serde_round_trip() {
        let d = toy();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn row_norms_match_ops_norm_bitwise() {
        let d = toy();
        assert!(!d.has_norm_cache());
        let cache = d.row_norms();
        assert_eq!(cache.len(), d.len());
        assert!(!cache.is_empty());
        for (i, row) in d.rows().enumerate() {
            assert_eq!(cache.norm(i).to_bits(), crate::ops::norm(row).to_bits());
            assert_eq!(cache.sq(i).to_bits(), crate::ops::dot(row, row).to_bits());
        }
        assert_eq!(cache.norms().len(), d.len());
        assert_eq!(cache.sq_norms().len(), d.len());
        assert!(d.has_norm_cache());
    }

    #[test]
    fn norm_cache_is_invalidated_by_every_mutating_path() {
        // push
        let mut d = toy();
        d.row_norms();
        d.push(&[5.0, 12.0]).unwrap();
        assert!(!d.has_norm_cache(), "push must drop the cache");
        assert_eq!(d.row_norms().norm(4), 13.0);

        // row_mut
        let mut d = toy();
        d.row_norms();
        d.row_mut(0)[0] = 100.0;
        assert!(!d.has_norm_cache(), "row_mut must drop the cache");
        assert_eq!(
            d.row_norms().norm(0).to_bits(),
            crate::ops::norm(d.row(0)).to_bits()
        );

        // normalize
        let mut d = toy();
        d.row_norms();
        d.normalize();
        assert!(!d.has_norm_cache(), "normalize must drop the cache");
        assert!((d.row_norms().norm(2) - 1.0).abs() < 1e-5);

        // extend_from
        let mut d = toy();
        d.row_norms();
        let other = toy();
        d.extend_from(&other).unwrap();
        assert!(!d.has_norm_cache(), "extend_from must drop the cache");
        assert_eq!(d.row_norms().len(), 8);
    }

    #[test]
    fn shared_views_alias_one_allocation() {
        let shared = toy().into_shared();
        assert!(shared.backing().is_shared());
        assert!(!shared.is_mapped());
        assert_eq!(shared, toy(), "into_shared must not change contents");

        let head = shared.slice_rows(0, 2).unwrap();
        let tail = shared.slice_rows(2, 2).unwrap();
        assert!(head.backing().is_shared() && tail.backing().is_shared());
        assert_eq!(head.row(1), toy().row(1));
        assert_eq!(tail.row(0), toy().row(2));
        // The views and the full dataset read from the same buffer.
        assert_eq!(
            shared.as_flat().as_ptr(),
            head.as_flat().as_ptr(),
            "head view must alias the shared allocation"
        );
        assert!(shared.slice_rows(3, 2).is_err(), "out-of-bounds view");
        // Empty views are fine (an empty shard).
        assert_eq!(shared.slice_rows(4, 0).unwrap().len(), 0);
    }

    #[test]
    fn slice_rows_on_owned_copies() {
        let d = toy();
        let view = d.slice_rows(1, 2).unwrap();
        assert!(!view.backing().is_shared());
        assert_eq!(view.row(0), d.row(1));
        assert_eq!(view.row(1), d.row(2));
    }

    #[test]
    fn mutating_a_shared_view_promotes_copy_on_write() {
        let shared = toy().into_shared();
        let mut view = shared.slice_rows(0, 2).unwrap();
        view.row_norms();
        view.row_mut(0)[0] = 42.0;
        assert!(
            !view.backing().is_shared(),
            "mutation must promote to owned"
        );
        assert!(!view.has_norm_cache(), "mutation must drop the cache");
        assert_eq!(view.row(0)[0], 42.0);
        // The shared buffer itself is untouched.
        assert_eq!(shared.row(0), toy().row(0));
    }

    #[test]
    fn shared_round_trips_through_serde_and_into_flat() {
        let shared = toy().into_shared();
        let json = serde_json::to_string(&shared).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, shared);
        let view = shared.slice_rows(2, 2).unwrap();
        assert_eq!(view.clone().into_flat(), view.as_flat().to_vec());
    }

    #[test]
    fn norm_cache_survives_clone_cheaply() {
        let d = toy();
        d.row_norms();
        let cloned = d.clone();
        assert!(cloned.has_norm_cache(), "clone shares the Arc'd cache");
        assert_eq!(cloned.row_norms().norms(), d.row_norms().norms());
    }
}
