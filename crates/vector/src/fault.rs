//! Deterministic, seed-driven failpoint registry.
//!
//! Storage-plane code consults named **sites** (`wal.sync`,
//! `manifest.rename`, …) at its failure-prone edges via [`fire`]; the
//! serve layer consults its own (`serve.coalesce.flush`,
//! `serve.reload.swap`, `cache.pin.mmap`, `cache.repair.fetch`) — sites
//! are plain strings, so a new plane needs no registry changes. A test or
//! chaos harness arms them by installing a [`FaultPlan`]. Every firing
//! decision is a pure function of the plan's seed, the site name, and the
//! site's consultation index, so any failing run is replayable from its
//! seed alone — no wall clock, no global RNG.
//!
//! The registry is process-wide (one plan at a time) and compiled to a
//! **no-op unless the `fault-injection` feature is enabled**: without the
//! feature, [`fire`] is an `#[inline(always)]` constant `false` and every
//! call site folds away, so production builds carry zero overhead and the
//! plan-management functions do nothing.
//!
//! Harnesses that interleave faulted operations with fault-free oracle
//! operations in one process use [`set_enabled`] to pause the registry
//! *without* advancing consultation counters, keeping the faulted
//! operation sequence deterministic regardless of how much oracle work
//! runs in between.

use std::fmt;

/// When an armed failpoint site fires, relative to the site's own
/// consultation counter (0-based: the first [`fire`] call for a site is
/// consultation 0).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultMode {
    /// Registered but disarmed: never fires.
    Off,
    /// Fires exactly once, on the site's `n`-th consultation.
    OnceAt(u64),
    /// Fires on each consultation independently with probability `p`,
    /// decided by a generator keyed on `(plan seed, site, consultation)` —
    /// deterministic and replayable, unlike an ambient RNG.
    Probability(f64),
    /// Fires on exactly the listed consultation indices.
    Schedule(Vec<u64>),
}

/// A complete fault schedule: one seed plus a mode per armed site.
///
/// Installed process-wide with [`install`]; the seed is the only state a
/// failing run needs to publish for an exact replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed keying every probabilistic firing decision.
    pub seed: u64,
    /// `(site, mode)` pairs; sites not listed never fire.
    pub sites: Vec<(String, FaultMode)>,
}

impl FaultPlan {
    /// An empty plan under `seed` (no sites armed yet).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sites: Vec::new(),
        }
    }

    /// Arm `site` with `mode` (builder-style).
    pub fn with_site(mut self, site: &str, mode: FaultMode) -> Self {
        self.sites.push((site.to_string(), mode));
        self
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FaultPlan(seed={}", self.seed)?;
        for (site, mode) in &self.sites {
            write!(f, ", {site}={mode:?}")?;
        }
        write!(f, ")")
    }
}

/// The `std::io::Error` a firing site injects into its caller. The message
/// names the site so typed-error assertions (and humans reading logs) can
/// tell an injected fault from a real one.
pub fn injected(site: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at failpoint `{site}`"))
}

#[cfg(feature = "fault-injection")]
mod active {
    use super::{FaultMode, FaultPlan};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    struct SiteState {
        mode: FaultMode,
        hits: u64,
        trips: u64,
    }

    struct Registry {
        seed: u64,
        enabled: bool,
        sites: HashMap<String, SiteState>,
    }

    fn registry() -> &'static Mutex<Option<Registry>> {
        static REGISTRY: OnceLock<Mutex<Option<Registry>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(None))
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn site_hash(site: &str) -> u64 {
        // FNV-1a: stable across runs and platforms, unlike `DefaultHasher`.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in site.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Install `plan`, replacing any previous one and zeroing all counters.
    pub fn install(plan: FaultPlan) {
        let sites = plan
            .sites
            .into_iter()
            .map(|(site, mode)| {
                (
                    site,
                    SiteState {
                        mode,
                        hits: 0,
                        trips: 0,
                    },
                )
            })
            .collect();
        *registry().lock().unwrap() = Some(Registry {
            seed: plan.seed,
            enabled: true,
            sites,
        });
    }

    /// Remove the installed plan; every site goes quiet.
    pub fn clear() {
        *registry().lock().unwrap() = None;
    }

    /// Pause (`false`) or resume (`true`) the installed plan **without**
    /// advancing consultation counters, so fault-free oracle work run while
    /// paused does not perturb the faulted sequence.
    pub fn set_enabled(on: bool) {
        if let Some(reg) = registry().lock().unwrap().as_mut() {
            reg.enabled = on;
        }
    }

    /// Whether a plan is currently installed (paused or not).
    pub fn installed() -> bool {
        registry().lock().unwrap().is_some()
    }

    /// Consult `site`: returns `true` when the armed mode says this
    /// consultation fails. Advances the site's consultation counter (only
    /// while a plan is installed and enabled).
    pub fn fire(site: &str) -> bool {
        let mut guard = registry().lock().unwrap();
        let Some(reg) = guard.as_mut() else {
            return false;
        };
        if !reg.enabled {
            return false;
        }
        let seed = reg.seed;
        let state = reg
            .sites
            .entry(site.to_string())
            .or_insert_with(|| SiteState {
                mode: FaultMode::Off,
                hits: 0,
                trips: 0,
            });
        let idx = state.hits;
        state.hits += 1;
        let fired = match &state.mode {
            FaultMode::Off => false,
            FaultMode::OnceAt(n) => idx == *n,
            FaultMode::Probability(p) => {
                let draw = splitmix64(seed ^ site_hash(site) ^ splitmix64(idx));
                ((draw >> 11) as f64 / (1u64 << 53) as f64) < *p
            }
            FaultMode::Schedule(steps) => steps.contains(&idx),
        };
        if fired {
            state.trips += 1;
        }
        fired
    }

    /// Times `site` has been consulted under the installed plan.
    pub fn hits(site: &str) -> u64 {
        registry()
            .lock()
            .unwrap()
            .as_ref()
            .and_then(|reg| reg.sites.get(site))
            .map_or(0, |s| s.hits)
    }

    /// Times `site` has fired under the installed plan.
    pub fn trips(site: &str) -> u64 {
        registry()
            .lock()
            .unwrap()
            .as_ref()
            .and_then(|reg| reg.sites.get(site))
            .map_or(0, |s| s.trips)
    }

    /// Total firings across every site under the installed plan.
    pub fn total_trips() -> u64 {
        registry()
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |reg| reg.sites.values().map(|s| s.trips).sum())
    }
}

#[cfg(feature = "fault-injection")]
pub use active::{clear, fire, hits, install, installed, set_enabled, total_trips, trips};

#[cfg(not(feature = "fault-injection"))]
mod noop {
    use super::FaultPlan;

    /// No-op without the `fault-injection` feature.
    #[inline(always)]
    pub fn install(_plan: FaultPlan) {}

    /// No-op without the `fault-injection` feature.
    #[inline(always)]
    pub fn clear() {}

    /// No-op without the `fault-injection` feature.
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// Always `false` without the `fault-injection` feature.
    #[inline(always)]
    pub fn installed() -> bool {
        false
    }

    /// Always `false` without the `fault-injection` feature: this is the
    /// hot-path consult, and the constant folds every call site away.
    #[inline(always)]
    pub fn fire(_site: &str) -> bool {
        false
    }

    /// Always `0` without the `fault-injection` feature.
    #[inline(always)]
    pub fn hits(_site: &str) -> u64 {
        0
    }

    /// Always `0` without the `fault-injection` feature.
    #[inline(always)]
    pub fn trips(_site: &str) -> u64 {
        0
    }

    /// Always `0` without the `fault-injection` feature.
    #[inline(always)]
    pub fn total_trips() -> u64 {
        0
    }
}

#[cfg(not(feature = "fault-injection"))]
pub use noop::{clear, fire, hits, install, installed, set_enabled, total_trips, trips};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_errors_name_their_site() {
        let err = injected("wal.sync");
        assert!(err.to_string().contains("wal.sync"));
    }

    #[test]
    fn plans_build_and_display() {
        let plan = FaultPlan::new(7)
            .with_site("wal.sync", FaultMode::OnceAt(2))
            .with_site("manifest.rename", FaultMode::Probability(0.5));
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.sites.len(), 2);
        let text = plan.to_string();
        assert!(text.contains("seed=7") && text.contains("wal.sync"));
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn without_the_feature_everything_is_inert() {
        install(FaultPlan::new(1).with_site("wal.sync", FaultMode::OnceAt(0)));
        assert!(!installed());
        assert!(!fire("wal.sync"));
        assert_eq!(hits("wal.sync"), 0);
        assert_eq!(trips("wal.sync"), 0);
        assert_eq!(total_trips(), 0);
        clear();
    }

    // The active-registry tests live behind the feature AND serialize on a
    // lock: the registry is process-wide, and `cargo test` runs tests
    // concurrently.
    #[cfg(feature = "fault-injection")]
    mod active {
        use super::super::*;
        use std::sync::{Mutex, MutexGuard, OnceLock};

        pub(crate) fn exclusive() -> MutexGuard<'static, ()> {
            static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
            LOCK.get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn once_at_fires_exactly_once_at_the_index() {
            let _guard = exclusive();
            install(FaultPlan::new(3).with_site("s.once", FaultMode::OnceAt(2)));
            let fired: Vec<bool> = (0..5).map(|_| fire("s.once")).collect();
            assert_eq!(fired, vec![false, false, true, false, false]);
            assert_eq!(hits("s.once"), 5);
            assert_eq!(trips("s.once"), 1);
            clear();
        }

        #[test]
        fn schedule_fires_on_listed_indices_only() {
            let _guard = exclusive();
            install(FaultPlan::new(3).with_site("s.sched", FaultMode::Schedule(vec![0, 3])));
            let fired: Vec<bool> = (0..5).map(|_| fire("s.sched")).collect();
            assert_eq!(fired, vec![true, false, false, true, false]);
            assert_eq!(total_trips(), 2);
            clear();
        }

        #[test]
        fn probability_is_deterministic_per_seed_and_calibrated() {
            let _guard = exclusive();
            let run = |seed: u64| -> Vec<bool> {
                install(FaultPlan::new(seed).with_site("s.prob", FaultMode::Probability(0.25)));
                let fired = (0..400).map(|_| fire("s.prob")).collect();
                clear();
                fired
            };
            let a = run(11);
            let b = run(11);
            assert_eq!(a, b, "same seed must replay the same firing sequence");
            let c = run(12);
            assert_ne!(a, c, "different seeds must differ somewhere");
            let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
            assert!(
                (0.10..=0.40).contains(&rate),
                "p=0.25 firing rate way off: {rate}"
            );
        }

        #[test]
        fn pausing_does_not_advance_counters() {
            let _guard = exclusive();
            install(FaultPlan::new(5).with_site("s.pause", FaultMode::OnceAt(1)));
            assert!(!fire("s.pause")); // consultation 0
            set_enabled(false);
            for _ in 0..10 {
                assert!(!fire("s.pause"), "paused registry must not fire");
            }
            assert_eq!(hits("s.pause"), 1, "paused consults must not count");
            set_enabled(true);
            assert!(fire("s.pause"), "consultation 1 fires after resume");
            clear();
        }

        #[test]
        fn unarmed_sites_never_fire_but_are_counted() {
            let _guard = exclusive();
            install(FaultPlan::new(9));
            assert!(!fire("s.unarmed"));
            assert_eq!(hits("s.unarmed"), 1);
            assert_eq!(trips("s.unarmed"), 0);
            clear();
            assert!(!fire("s.unarmed"), "cleared registry is inert");
        }
    }
}
