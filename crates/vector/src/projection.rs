//! Gaussian random projection.
//!
//! The paper follows the ANN-benchmark preprocessing for the NYTimes
//! bag-of-words corpus: sample, **Gaussian-random-project to 256 dimensions**
//! and L2-normalize. This module implements the projection so the synthetic
//! NYT-style workload can run through the exact same pipeline.

use crate::dataset::Dataset;
use crate::error::VectorError;
use crate::ops;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// A dense Gaussian random projection matrix `R ∈ R^{out_dim × in_dim}` with
/// entries drawn i.i.d. from `N(0, 1/out_dim)` (the Johnson–Lindenstrauss
/// scaling that approximately preserves pairwise distances).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianRandomProjection {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim` matrix.
    matrix: Vec<f32>,
}

impl GaussianRandomProjection {
    /// Draw a new projection from `in_dim` to `out_dim` dimensions.
    ///
    /// # Errors
    /// Returns [`VectorError::InvalidParameter`] if either dimension is zero.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Result<Self, VectorError> {
        if in_dim == 0 || out_dim == 0 {
            return Err(VectorError::InvalidParameter(
                "projection dimensions must be positive".to_string(),
            ));
        }
        let std = (1.0 / out_dim as f64).sqrt();
        let normal = Normal::new(0.0, std).expect("std is positive and finite");
        let matrix = (0..in_dim * out_dim)
            .map(|_| normal.sample(rng) as f32)
            .collect();
        Ok(Self {
            in_dim,
            out_dim,
            matrix,
        })
    }

    /// Input dimensionality this projection accepts.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality this projection produces.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Project a single vector.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] if `v.len() != in_dim`.
    pub fn project(&self, v: &[f32]) -> Result<Vec<f32>, VectorError> {
        if v.len() != self.in_dim {
            return Err(VectorError::DimensionMismatch {
                expected: self.in_dim,
                found: v.len(),
            });
        }
        let mut out = vec![0.0f32; self.out_dim];
        for (o, out_val) in out.iter_mut().enumerate() {
            let row = &self.matrix[o * self.in_dim..(o + 1) * self.in_dim];
            *out_val = ops::dot(row, v);
        }
        Ok(out)
    }

    /// Project an entire dataset, optionally L2-normalizing the output rows
    /// (the paper always normalizes after projecting).
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] if the dataset dimension
    /// differs from `in_dim`.
    pub fn project_dataset(&self, data: &Dataset, normalize: bool) -> Result<Dataset, VectorError> {
        if data.dim() != self.in_dim {
            return Err(VectorError::DimensionMismatch {
                expected: self.in_dim,
                found: data.dim(),
            });
        }
        let mut out = Dataset::with_capacity(self.out_dim, data.len())?;
        for row in data.rows() {
            let mut projected = self.project(row)?;
            if normalize {
                ops::normalize_in_place(&mut projected);
            }
            out.push(&projected)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_zero_dimensions() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(GaussianRandomProjection::new(0, 4, &mut rng).is_err());
        assert!(GaussianRandomProjection::new(4, 0, &mut rng).is_err());
    }

    #[test]
    fn projects_to_requested_dimension() {
        let mut rng = StdRng::seed_from_u64(42);
        let proj = GaussianRandomProjection::new(100, 16, &mut rng).unwrap();
        assert_eq!(proj.in_dim(), 100);
        assert_eq!(proj.out_dim(), 16);
        let v = vec![1.0f32; 100];
        let p = proj.project(&v).unwrap();
        assert_eq!(p.len(), 16);
        assert!(proj.project(&[1.0; 7]).is_err());
    }

    #[test]
    fn projection_roughly_preserves_relative_distances() {
        // Johnson–Lindenstrauss sanity check: points far apart in the input
        // stay farther apart than nearby points, on average.
        let mut rng = StdRng::seed_from_u64(7);
        let dim_in = 200;
        let proj = GaussianRandomProjection::new(dim_in, 64, &mut rng).unwrap();

        let base: Vec<f32> = (0..dim_in).map(|i| (i as f32 * 0.37).sin()).collect();
        let near: Vec<f32> = base.iter().map(|x| x + 0.01).collect();
        let far: Vec<f32> = base.iter().map(|x| -x + 3.0).collect();

        let pb = proj.project(&base).unwrap();
        let pn = proj.project(&near).unwrap();
        let pf = proj.project(&far).unwrap();

        let d_near = ops::squared_euclidean(&pb, &pn);
        let d_far = ops::squared_euclidean(&pb, &pf);
        assert!(d_far > d_near * 10.0, "far={d_far}, near={d_near}");
    }

    #[test]
    fn project_dataset_normalizes_when_requested() {
        let mut rng = StdRng::seed_from_u64(3);
        let proj = GaussianRandomProjection::new(10, 4, &mut rng).unwrap();
        let data = Dataset::from_rows(vec![vec![0.5f32; 10], vec![2.0f32; 10]]).unwrap();
        let projected = proj.project_dataset(&data, true).unwrap();
        assert_eq!(projected.dim(), 4);
        assert_eq!(projected.len(), 2);
        assert!(projected.is_normalized(1e-4));

        let unnormalized = proj.project_dataset(&data, false).unwrap();
        assert!(!unnormalized.is_normalized(1e-4));

        let wrong_dim = Dataset::from_rows(vec![vec![1.0f32; 3]]).unwrap();
        assert!(proj.project_dataset(&wrong_dim, true).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(11);
        let proj = GaussianRandomProjection::new(8, 4, &mut rng).unwrap();
        let json = serde_json::to_string(&proj).unwrap();
        let back: GaussianRandomProjection = serde_json::from_str(&json).unwrap();
        let v = vec![0.25f32; 8];
        assert_eq!(proj.project(&v).unwrap(), back.project(&v).unwrap());
    }
}
