//! Low-level dense vector kernels.
//!
//! These are the hot inner loops of every range query in the workspace, so
//! they are written to auto-vectorize: fixed-stride slices, unrolled
//! accumulators and no bounds checks inside the loop body (the slice lengths
//! are asserted once up front).

/// Dot product of two equally sized slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // Four independent accumulators let LLVM vectorize without reassociation
    // concerns dominating the loop.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0f32;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    s0 + s1 + s2 + s3 + tail
}

/// Register-tiled 4-query dot-product micro-kernel: the mini-GEMM building
/// block of the query-major batch paths.
///
/// Computes `[dot(q0, x), dot(q1, x), dot(q2, x), dot(q3, x)]` while loading
/// each element of `x` from memory **once** for all four queries — a 4×1
/// outer-product tile held entirely in registers. In a blocked scan this
/// quarters the dominant memory traffic (the dataset row stream) relative to
/// four independent [`dot`] calls.
///
/// Every lane replicates [`dot`]'s exact accumulation order (four unrolled
/// partial sums plus a tail, combined as `s0 + s1 + s2 + s3 + tail`), so each
/// returned value is **bit-identical** to the corresponding scalar `dot`
/// call. The specialized kernels and the MLP batch forward rely on this for
/// their byte-identical-results guarantee.
///
/// # Panics
/// Panics if any slice length differs from `x.len()`.
#[inline]
pub fn dot4(q0: &[f32], q1: &[f32], q2: &[f32], q3: &[f32], x: &[f32]) -> [f32; 4] {
    let n = x.len();
    assert_eq!(q0.len(), n, "dot4: length mismatch");
    assert_eq!(q1.len(), n, "dot4: length mismatch");
    assert_eq!(q2.len(), n, "dot4: length mismatch");
    assert_eq!(q3.len(), n, "dot4: length mismatch");
    let chunks = n / 4;
    // 4 lanes x 4 unrolled accumulators: a 4x4 register tile.
    let mut acc = [[0.0f32; 4]; 4];
    for i in 0..chunks {
        let j = i * 4;
        let (x0, x1, x2, x3) = (x[j], x[j + 1], x[j + 2], x[j + 3]);
        acc[0][0] += q0[j] * x0;
        acc[0][1] += q0[j + 1] * x1;
        acc[0][2] += q0[j + 2] * x2;
        acc[0][3] += q0[j + 3] * x3;
        acc[1][0] += q1[j] * x0;
        acc[1][1] += q1[j + 1] * x1;
        acc[1][2] += q1[j + 2] * x2;
        acc[1][3] += q1[j + 3] * x3;
        acc[2][0] += q2[j] * x0;
        acc[2][1] += q2[j + 1] * x1;
        acc[2][2] += q2[j + 2] * x2;
        acc[2][3] += q2[j + 3] * x3;
        acc[3][0] += q3[j] * x0;
        acc[3][1] += q3[j + 1] * x1;
        acc[3][2] += q3[j + 2] * x2;
        acc[3][3] += q3[j + 3] * x3;
    }
    let mut tails = [0.0f32; 4];
    for j in chunks * 4..n {
        let xv = x[j];
        tails[0] += q0[j] * xv;
        tails[1] += q1[j] * xv;
        tails[2] += q2[j] * xv;
        tails[3] += q3[j] * xv;
    }
    [
        acc[0][0] + acc[0][1] + acc[0][2] + acc[0][3] + tails[0],
        acc[1][0] + acc[1][1] + acc[1][2] + acc[1][3] + tails[1],
        acc[2][0] + acc[2][1] + acc[2][2] + acc[2][3] + tails[2],
        acc[3][0] + acc[3][1] + acc[3][2] + acc[3][3] + tails[3],
    ]
}

/// Squared Euclidean distance between two equally sized slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "squared_euclidean: length mismatch");
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut tail = 0.0f32;
    for j in chunks * 4..a.len() {
        let d = a[j] - b[j];
        tail += d * d;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Euclidean (L2) norm of a slice.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Normalize `a` to unit L2 norm in place.
///
/// Vectors with a norm below `1e-12` are left untouched (they carry no
/// directional information and normalizing them would produce NaNs).
/// Returns the original norm.
#[inline]
pub fn normalize_in_place(a: &mut [f32]) -> f32 {
    let n = norm(a);
    if n > 1e-12 {
        let inv = 1.0 / n;
        for x in a.iter_mut() {
            *x *= inv;
        }
    }
    n
}

/// `y += alpha * x` (the BLAS `axpy` kernel).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place by `alpha`.
#[inline]
pub fn scale_in_place(a: &mut [f32], alpha: f32) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Element-wise mean of a set of equally sized rows. Returns `None` when
/// `rows` is empty.
pub fn mean<'a, I>(rows: I, dim: usize) -> Option<Vec<f32>>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut acc = vec![0.0f32; dim];
    let mut count = 0usize;
    for row in rows {
        assert_eq!(row.len(), dim, "mean: row dimension mismatch");
        axpy(1.0, row, &mut acc);
        count += 1;
    }
    if count == 0 {
        return None;
    }
    scale_in_place(&mut acc, 1.0 / count as f32);
    Some(acc)
}

/// Cosine similarity between two vectors (not assumed normalized).
///
/// Returns 0 when either vector has (near-)zero norm.
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na <= 1e-12 || nb <= 1e-12 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        let _ = dot(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn dot4_lanes_are_bit_identical_to_scalar_dot() {
        // Odd length exercises the tail; distinct per-lane data exercises the
        // full register tile.
        for len in [0usize, 1, 3, 4, 7, 13, 64] {
            let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
            let qs: Vec<Vec<f32>> = (0..4)
                .map(|l| {
                    (0..len)
                        .map(|i| ((i + l * 7) as f32 * 0.11).cos() * (l as f32 + 0.5))
                        .collect()
                })
                .collect();
            let tiled = dot4(&qs[0], &qs[1], &qs[2], &qs[3], &x);
            for l in 0..4 {
                assert_eq!(
                    tiled[l].to_bits(),
                    dot(&qs[l], &x).to_bits(),
                    "lane {l} len {len}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot4_panics_on_length_mismatch() {
        let _ = dot4(&[1.0], &[1.0], &[1.0], &[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn squared_euclidean_matches_naive() {
        let a = [1.0f32, -2.0, 3.5, 0.0, 7.25];
        let b = [0.5f32, 2.0, -3.5, 1.0, 7.25];
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((squared_euclidean(&a, &b) - naive).abs() < 1e-5);
    }

    #[test]
    fn norm_of_unit_axis_is_one() {
        let mut v = vec![0.0f32; 17];
        v[9] = 1.0;
        assert!((norm(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_in_place_produces_unit_norm() {
        let mut v: Vec<f32> = (1..20).map(|i| i as f32).collect();
        let old = normalize_in_place(&mut v);
        assert!(old > 1.0);
        assert!((norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0f32; 8];
        let old = normalize_in_place(&mut v);
        assert_eq!(old, 0.0);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn mean_of_rows() {
        let rows: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = mean(rows.iter().map(|r| r.as_slice()), 2).unwrap();
        assert_eq!(m, vec![3.0, 4.0]);
    }

    #[test]
    fn mean_of_nothing_is_none() {
        assert!(mean(std::iter::empty(), 4).is_none());
    }

    #[test]
    fn cosine_similarity_bounds_and_degenerate() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &a), 0.0);
    }
}
