//! Distance metrics.
//!
//! The paper's method is defined for **angular distances**, with cosine
//! distance as the concrete metric used throughout its evaluation. Some of
//! the baselines it compares against only support Euclidean distance, so the
//! paper converts thresholds via Equation (1), valid for unit-norm vectors:
//!
//! ```text
//! d_euc(u, v) = sqrt(2 * d_cos(u, v))      when ||u|| = ||v|| = 1
//! ```
//!
//! [`cosine_to_euclidean`] / [`euclidean_to_cosine`] implement that
//! conversion so every engine in this workspace can speak either language.

use crate::ops;
use serde::{Deserialize, Serialize};

/// Object-safe distance abstraction used by every range-query engine and
/// clusterer in the workspace.
pub trait DistanceMetric: Send + Sync {
    /// Distance between two equal-length vectors.
    fn dist(&self, a: &[f32], b: &[f32]) -> f32;

    /// Human-readable metric name (used in reports and benchmarks).
    fn name(&self) -> &'static str;

    /// Whether this metric satisfies the triangle inequality (needed by the
    /// cover tree). Cosine *distance* does not; the angular distance and the
    /// Euclidean distance do.
    fn is_metric(&self) -> bool {
        true
    }
}

/// Cosine distance `1 - cos(a, b)`, bounded to `[0, 2]`.
///
/// This is the paper's primary metric. Note it is *not* a true metric (no
/// triangle inequality), which is one reason the paper's framework relies on
/// range counting rather than metric-tree pruning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CosineDistance;

impl DistanceMetric for CosineDistance {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        1.0 - ops::cosine_similarity(a, b)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }

    fn is_metric(&self) -> bool {
        false
    }
}

/// Angular distance `acos(cos(a, b)) / pi`, bounded to `[0, 1]`.
///
/// Unlike plain cosine distance this *is* a proper metric, which matters for
/// the cover-tree based BLOCK-DBSCAN baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AngularDistance;

impl DistanceMetric for AngularDistance {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        ops::cosine_similarity(a, b).clamp(-1.0, 1.0).acos() / std::f32::consts::PI
    }

    fn name(&self) -> &'static str {
        "angular"
    }
}

/// Euclidean (L2) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EuclideanDistance;

impl DistanceMetric for EuclideanDistance {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        ops::squared_euclidean(a, b).sqrt()
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Squared Euclidean distance (cheaper; not a metric because the triangle
/// inequality fails, but monotone in Euclidean distance so range queries can
/// square their thresholds instead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SquaredEuclideanDistance;

impl DistanceMetric for SquaredEuclideanDistance {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        ops::squared_euclidean(a, b)
    }

    fn name(&self) -> &'static str {
        "sq_euclidean"
    }

    fn is_metric(&self) -> bool {
        false
    }
}

/// Negative inner product, treated as a "distance" (`-<a,b>`). Useful for
/// maximum-inner-product style workloads; equal to cosine distance minus one
/// on unit-normalized data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DotProductSimilarity;

impl DistanceMetric for DotProductSimilarity {
    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        -ops::dot(a, b)
    }

    fn name(&self) -> &'static str {
        "neg_dot"
    }

    fn is_metric(&self) -> bool {
        false
    }
}

/// Enumeration of the built-in metrics, convenient for configuration files
/// and CLI flags. Convert to a concrete metric with [`Metric::boxed`] or use
/// [`Metric::dist`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
#[derive(Default)]
pub enum Metric {
    /// `1 - cos(a, b)`.
    #[default]
    Cosine,
    /// `acos(cos(a, b)) / pi`.
    Angular,
    /// L2 distance.
    Euclidean,
    /// Squared L2 distance.
    SquaredEuclidean,
    /// Negative inner product.
    NegDot,
}

impl Metric {
    /// Every built-in metric, in declaration order. The kernel-agreement
    /// tests and the benchmark kernel matrix iterate this instead of
    /// hand-copying the list.
    pub const ALL: [Metric; 5] = [
        Metric::Cosine,
        Metric::Angular,
        Metric::Euclidean,
        Metric::SquaredEuclidean,
        Metric::NegDot,
    ];

    /// Translate a cosine-distance threshold into this metric's equivalent
    /// threshold over **unit-normalized** vectors — Equation (1) of the
    /// paper generalized to every built-in metric, so one ε setting can
    /// drive an engine under any of them and select the same neighborhood.
    pub fn equivalent_threshold(&self, d_cos: f32) -> f32 {
        match self {
            Metric::Cosine => d_cos,
            Metric::Angular => {
                (1.0 - d_cos.clamp(0.0, 2.0)).clamp(-1.0, 1.0).acos() / std::f32::consts::PI
            }
            Metric::Euclidean => cosine_to_euclidean(d_cos),
            Metric::SquaredEuclidean => {
                let e = cosine_to_euclidean(d_cos);
                e * e
            }
            Metric::NegDot => d_cos - 1.0,
        }
    }

    /// Compute the distance under this metric.
    #[inline]
    pub fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::Cosine => CosineDistance.dist(a, b),
            Metric::Angular => AngularDistance.dist(a, b),
            Metric::Euclidean => EuclideanDistance.dist(a, b),
            Metric::SquaredEuclidean => SquaredEuclideanDistance.dist(a, b),
            Metric::NegDot => DotProductSimilarity.dist(a, b),
        }
    }

    /// Box the corresponding [`DistanceMetric`] implementation.
    pub fn boxed(&self) -> Box<dyn DistanceMetric> {
        match self {
            Metric::Cosine => Box::new(CosineDistance),
            Metric::Angular => Box::new(AngularDistance),
            Metric::Euclidean => Box::new(EuclideanDistance),
            Metric::SquaredEuclidean => Box::new(SquaredEuclideanDistance),
            Metric::NegDot => Box::new(DotProductSimilarity),
        }
    }

    /// Name of the metric, matching [`DistanceMetric::name`].
    pub fn name(&self) -> &'static str {
        self.boxed().name()
    }
}

/// Equation (1) of the paper: convert a cosine-distance threshold into the
/// equivalent Euclidean threshold, valid for unit-normalized vectors.
///
/// Cosine distances live in `[0, 2]`; out-of-domain inputs are clamped into
/// that range before converting, so the result is always a valid Euclidean
/// distance between unit vectors (also `[0, 2]`).
#[inline]
pub fn cosine_to_euclidean(d_cos: f32) -> f32 {
    (2.0 * d_cos.clamp(0.0, 2.0)).sqrt()
}

/// Inverse of [`cosine_to_euclidean`]: convert a Euclidean threshold over
/// unit-normalized vectors into the equivalent cosine-distance threshold.
///
/// Euclidean distances between unit vectors live in `[0, 2]`; out-of-domain
/// inputs are clamped into that range before converting instead of producing
/// cosine "distances" above 2.
#[inline]
pub fn euclidean_to_cosine(d_euc: f32) -> f32 {
    let d_euc = d_euc.clamp(0.0, 2.0);
    d_euc * d_euc / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: &[f32]) -> Vec<f32> {
        let mut v = v.to_vec();
        ops::normalize_in_place(&mut v);
        v
    }

    #[test]
    fn cosine_distance_identity_and_orthogonality() {
        let a = unit(&[1.0, 2.0, 3.0]);
        let b = unit(&[-2.0, 1.0, 0.0]);
        assert!(CosineDistance.dist(&a, &a).abs() < 1e-5);
        assert!((CosineDistance.dist(&a, &b) - 1.0).abs() < 1e-5);
        let neg: Vec<f32> = a.iter().map(|x| -x).collect();
        assert!((CosineDistance.dist(&a, &neg) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn angular_distance_is_bounded_and_symmetric() {
        let a = unit(&[0.3, -0.7, 0.1, 0.9]);
        let b = unit(&[0.5, 0.5, -0.5, 0.2]);
        let d1 = AngularDistance.dist(&a, &b);
        let d2 = AngularDistance.dist(&b, &a);
        assert!((d1 - d2).abs() < 1e-6);
        assert!((0.0..=1.0).contains(&d1));
        assert!(AngularDistance.dist(&a, &a) < 1e-3);
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        assert!((EuclideanDistance.dist(&a, &b) - 5.0).abs() < 1e-6);
        assert!((SquaredEuclideanDistance.dist(&a, &b) - 25.0).abs() < 1e-5);
    }

    #[test]
    fn dot_product_similarity_sign() {
        let a = [1.0f32, 0.0];
        assert_eq!(DotProductSimilarity.dist(&a, &a), -1.0);
    }

    #[test]
    fn equation_1_conversion_on_unit_vectors() {
        // Paper example: d_cos = 0.5 corresponds to d_euc = 1.0.
        assert!((cosine_to_euclidean(0.5) - 1.0).abs() < 1e-6);
        assert!((euclidean_to_cosine(1.0) - 0.5).abs() < 1e-6);
        // The conversions must be mutual inverses on the valid range.
        for i in 0..=20 {
            let d_cos = i as f32 * 0.1;
            let back = euclidean_to_cosine(cosine_to_euclidean(d_cos));
            assert!((back - d_cos).abs() < 1e-5, "d_cos={d_cos} back={back}");
        }
    }

    #[test]
    fn equation_1_agrees_with_actual_distances() {
        let a = unit(&[0.2, 0.5, -0.1, 0.8]);
        let b = unit(&[-0.3, 0.4, 0.9, 0.1]);
        let d_cos = CosineDistance.dist(&a, &b);
        let d_euc = EuclideanDistance.dist(&a, &b);
        assert!((cosine_to_euclidean(d_cos) - d_euc).abs() < 1e-4);
    }

    #[test]
    fn metric_enum_dispatch_matches_structs() {
        let a = unit(&[1.0, 2.0, 3.0]);
        let b = unit(&[3.0, 2.0, 1.0]);
        assert_eq!(Metric::Cosine.dist(&a, &b), CosineDistance.dist(&a, &b));
        assert_eq!(
            Metric::Euclidean.dist(&a, &b),
            EuclideanDistance.dist(&a, &b)
        );
        assert_eq!(Metric::default(), Metric::Cosine);
        assert_eq!(Metric::Angular.name(), "angular");
        assert!(!Metric::Cosine.boxed().is_metric());
        assert!(Metric::Euclidean.boxed().is_metric());
    }

    #[test]
    fn equivalent_threshold_selects_the_same_neighborhood() {
        // On unit vectors, a point within cosine distance 0.3 of the query
        // must be within the translated threshold under every metric, and a
        // point outside must stay outside.
        let q = unit(&[0.2, 0.5, -0.1, 0.8]);
        let near = unit(&[0.25, 0.52, -0.05, 0.78]);
        let far = unit(&[-0.3, 0.4, 0.9, 0.1]);
        let d_cos = 0.3f32;
        assert!(CosineDistance.dist(&q, &near) < d_cos);
        assert!(CosineDistance.dist(&q, &far) >= d_cos);
        for metric in Metric::ALL {
            let eps = metric.equivalent_threshold(d_cos);
            assert!(
                metric.dist(&q, &near) < eps,
                "{metric:?}: near point excluded"
            );
            assert!(
                metric.dist(&q, &far) >= eps,
                "{metric:?}: far point included"
            );
        }
        assert_eq!(Metric::ALL.len(), 5);
    }

    #[test]
    fn metric_serde_round_trip() {
        let m = Metric::SquaredEuclidean;
        let s = serde_json::to_string(&m).unwrap();
        assert_eq!(s, "\"squared_euclidean\"");
        let back: Metric = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
