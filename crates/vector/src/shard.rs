//! Shard-aware row-id mapping for one logical dataset split into N slices.
//!
//! A [`ShardMap`] records where each shard's contiguous row range starts in
//! the global row-id space, so scatter-gather code can rebase a shard-local
//! hit (`shard`, `local`) to the global row id the unsharded path would have
//! reported — and back. The map is the single source of truth for the split:
//! the snapshot writer, the sharded decode path and the scatter-gather engine
//! all derive their row arithmetic from it, which is what keeps sharded
//! results bit-identical to unsharded ones (same rows, same ids, same order).

use crate::error::VectorError;

/// Global row-id layout of a dataset split into contiguous shards.
///
/// Internally a cumulative-starts array: `starts[s]..starts[s + 1]` is shard
/// `s`'s global row range, `starts[n_shards]` is the total row count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    starts: Vec<usize>,
}

impl ShardMap {
    /// Split `total` rows as evenly as possible into `shards` contiguous
    /// slices: the first `total % shards` shards get one extra row. `shards`
    /// is clamped to `1..=max(total, 1)`, so no shard is ever empty unless
    /// the dataset itself is.
    pub fn even_split(total: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, total.max(1));
        let base = total / shards;
        let extra = total % shards;
        let mut starts = Vec::with_capacity(shards + 1);
        let mut at = 0;
        starts.push(at);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            starts.push(at);
        }
        Self { starts }
    }

    /// Build a map from explicit per-shard row counts.
    ///
    /// # Errors
    /// Returns [`VectorError::InvalidParameter`] if `lens` is empty.
    pub fn from_lens(lens: &[usize]) -> Result<Self, VectorError> {
        if lens.is_empty() {
            return Err(VectorError::InvalidParameter(
                "a shard map needs at least one shard".to_string(),
            ));
        }
        let mut starts = Vec::with_capacity(lens.len() + 1);
        let mut at = 0usize;
        starts.push(at);
        for &len in lens {
            at = at.checked_add(len).ok_or_else(|| {
                VectorError::InvalidParameter("shard lengths overflow usize".to_string())
            })?;
            starts.push(at);
        }
        Ok(Self { starts })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total rows across every shard.
    pub fn total_rows(&self) -> usize {
        *self.starts.last().expect("starts is never empty")
    }

    /// Global row id of shard `s`'s first row.
    pub fn start(&self, s: usize) -> usize {
        self.starts[s]
    }

    /// Number of rows in shard `s`.
    pub fn shard_len(&self, s: usize) -> usize {
        self.starts[s + 1] - self.starts[s]
    }

    /// Shard `s`'s global row range.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.starts[s]..self.starts[s + 1]
    }

    /// Per-shard row counts, in shard order.
    pub fn lens(&self) -> impl ExactSizeIterator<Item = usize> + '_ {
        (0..self.n_shards()).map(|s| self.shard_len(s))
    }

    /// Rebase a shard-local row id to the global row-id space.
    pub fn to_global(&self, shard: usize, local: usize) -> usize {
        debug_assert!(local < self.shard_len(shard));
        self.starts[shard] + local
    }

    /// Locate a global row id: returns `(shard, local)`.
    ///
    /// # Panics
    /// Panics if `global >= self.total_rows()`.
    pub fn locate(&self, global: usize) -> (usize, usize) {
        assert!(
            global < self.total_rows(),
            "row {global} out of range for {} total rows",
            self.total_rows()
        );
        // partition_point returns the first shard whose start exceeds
        // `global`; its predecessor owns the row. Empty shards share a start
        // with their successor and are correctly skipped (no row can land in
        // an empty range).
        let shard = self.starts.partition_point(|&s| s <= global) - 1;
        (shard, global - self.starts[shard])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_distributes_the_remainder_first() {
        let m = ShardMap::even_split(10, 3);
        assert_eq!(m.n_shards(), 3);
        assert_eq!(m.total_rows(), 10);
        assert_eq!(m.lens().collect::<Vec<_>>(), vec![4, 3, 3]);
        assert_eq!(m.range(1), 4..7);
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardMap::even_split(3, 7).n_shards(), 3);
        assert_eq!(ShardMap::even_split(3, 0).n_shards(), 1);
        let empty = ShardMap::even_split(0, 5);
        assert_eq!(empty.n_shards(), 1);
        assert_eq!(empty.total_rows(), 0);
    }

    #[test]
    fn from_lens_round_trips_the_layout() {
        let m = ShardMap::from_lens(&[4, 0, 3]).unwrap();
        assert_eq!(m.n_shards(), 3);
        assert_eq!(m.total_rows(), 7);
        assert_eq!(m.shard_len(1), 0);
        assert!(ShardMap::from_lens(&[]).is_err());
    }

    #[test]
    fn to_global_and_locate_are_inverses() {
        let m = ShardMap::from_lens(&[4, 0, 3, 1]).unwrap();
        for shard in 0..m.n_shards() {
            for local in 0..m.shard_len(shard) {
                let global = m.to_global(shard, local);
                assert_eq!(m.locate(global), (shard, local), "global {global}");
            }
        }
    }

    #[test]
    fn locate_skips_empty_shards() {
        let m = ShardMap::from_lens(&[2, 0, 2]).unwrap();
        assert_eq!(m.locate(2), (2, 0), "row 2 belongs to the non-empty shard");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_panics_past_the_end() {
        ShardMap::even_split(4, 2).locate(4);
    }

    #[test]
    fn even_split_matches_locate_over_every_row() {
        for total in [1usize, 7, 16, 31] {
            for shards in [1usize, 2, 3, 7] {
                let m = ShardMap::even_split(total, shards);
                let mut seen = 0;
                for s in 0..m.n_shards() {
                    for g in m.range(s) {
                        assert_eq!(m.locate(g), (s, g - m.start(s)));
                        seen += 1;
                    }
                }
                assert_eq!(seen, total, "split {total}/{shards} must cover all rows");
            }
        }
    }
}
