//! Zero-copy datasets over memory-mapped files.
//!
//! The train-once/serve-many pipeline persists the dataset as a flat
//! little-endian `f32` buffer (see [`crate::io`]). When that buffer sits at
//! a 4-byte-aligned offset of a file mapping — which the snapshot format v3
//! writer guarantees by padding sections to 8-byte alignment — a serving
//! process on a little-endian target can reinterpret the mapped bytes as
//! `&[f32]` **in place**: no allocation, no copy, and every process mapping
//! the same snapshot shares one set of page-cache pages.
//!
//! [`dataset_from_map`] is the safe front door: it validates the
//! [`crate::io`] header, bounds and alignment against the mapping, and
//! falls back to the copying decoder whenever the zero-copy preconditions
//! do not hold (misaligned payload, big-endian target), so callers always
//! get a correct [`Dataset`] — just not always a borrowed one.

use crate::dataset::Dataset;
use crate::error::VectorError;
use crate::io;
use std::fs::File;
use std::path::Path;
use std::sync::Arc;

pub use memmap2::Mmap;

/// Map the file at `path` read-only in its entirety.
///
/// The mapping aliases the file's pages: callers must treat the file as
/// immutable while the map is live (truncating it concurrently raises
/// `SIGBUS`). Snapshot files are written once and then only read, which is
/// exactly that contract — hence the safe wrapper around the unsafe
/// [`Mmap::map`].
///
/// # Errors
/// Propagates open/metadata/`mmap(2)` failures as [`VectorError::Io`].
pub fn map_file<P: AsRef<Path>>(path: P) -> Result<Arc<Mmap>, VectorError> {
    let file = File::open(path)?;
    // SAFETY: see above — the caller contract of this module is that mapped
    // files are immutable for the lifetime of the mapping.
    let map = unsafe { Mmap::map(&file)? };
    Ok(Arc::new(map))
}

/// Decode the [`crate::io`] dataset region at `map[offset..offset + len]`,
/// borrowing the `f32` payload from the mapping when possible.
///
/// Zero-copy engages when the target is little-endian **and** the payload
/// start is 4-byte aligned within the mapping; otherwise the bytes are
/// decoded through the copying path ([`io::decode`]) into an owned dataset.
/// Either way the returned dataset is identical element-for-element; use
/// [`Dataset::is_mapped`] to observe which path was taken.
///
/// # Errors
/// Returns [`VectorError::MalformedPayload`] when the region does not lie
/// inside the mapping or fails [`io::decode`]'s structural validation.
pub fn dataset_from_map(
    map: &Arc<Mmap>,
    offset: usize,
    len: usize,
) -> Result<Dataset, VectorError> {
    let end = offset
        .checked_add(len)
        .filter(|&end| end <= map.len())
        .ok_or_else(|| {
            VectorError::MalformedPayload(format!(
                "dataset region {offset}..{} exceeds the {}-byte mapping",
                offset.saturating_add(len),
                map.len()
            ))
        })?;
    let bytes = &map[offset..end];
    // Validate the header and total size exactly as the copying decoder
    // would; only the f32 payload itself is borrowed instead of copied.
    let (rows, dim) = io::validate_header(bytes)?;
    try_borrow(map, offset, rows, dim).map_or_else(|| io::decode(bytes), Ok)
}

/// The zero-copy reinterpret path: compiled out on big-endian targets, where
/// the on-disk little-endian `f32`s cannot be viewed in place.
#[cfg(target_endian = "little")]
fn try_borrow(map: &Arc<Mmap>, offset: usize, rows: usize, dim: usize) -> Option<Dataset> {
    let payload = offset + io::HEADER_LEN;
    if !(map.as_ptr() as usize + payload).is_multiple_of(std::mem::align_of::<f32>()) {
        return None;
    }
    Some(Dataset::from_mapped(dim, map.clone(), payload, rows * dim))
}

#[cfg(not(target_endian = "little"))]
fn try_borrow(_map: &Arc<Mmap>, _offset: usize, _rows: usize, _dim: usize) -> Option<Dataset> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn toy() -> Dataset {
        Dataset::from_rows(vec![
            vec![1.0f32, -2.5, 3.25],
            vec![0.0, 0.5, -0.125],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap()
    }

    fn write_temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("laf_vector_mapped_{}_{name}", std::process::id()));
        File::create(&path).unwrap().write_all(bytes).unwrap();
        path
    }

    #[test]
    fn aligned_region_is_borrowed_and_identical() {
        let d = toy();
        let path = write_temp("aligned", &io::encode(&d));
        let map = map_file(&path).unwrap();
        let mapped = dataset_from_map(&map, 0, map.len()).unwrap();
        // Offset 0 in a page-aligned mapping puts the payload at byte 20 —
        // 4-byte aligned, so the little-endian fast path engages.
        assert!(cfg!(target_endian = "big") || mapped.is_mapped());
        assert_eq!(mapped, d);
        assert_eq!(mapped.row(2), d.row(2));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn misaligned_region_falls_back_to_an_owned_copy() {
        let d = toy();
        let mut bytes = vec![0xEE]; // 1-byte prefix breaks 4-byte alignment
        bytes.extend_from_slice(&io::encode(&d));
        let path = write_temp("misaligned", &bytes);
        let map = map_file(&path).unwrap();
        let mapped = dataset_from_map(&map, 1, map.len() - 1).unwrap();
        assert!(!mapped.is_mapped());
        assert_eq!(mapped, d);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_bounds_and_corrupt_regions_are_rejected() {
        let d = toy();
        let path = write_temp("bounds", &io::encode(&d));
        let map = map_file(&path).unwrap();
        assert!(dataset_from_map(&map, 0, map.len() + 1).is_err());
        assert!(dataset_from_map(&map, usize::MAX, 8).is_err());
        assert!(dataset_from_map(&map, 4, map.len() - 4).is_err()); // bad magic
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mutation_promotes_a_mapped_dataset_to_owned() {
        let d = toy();
        let path = write_temp("cow", &io::encode(&d));
        let map = map_file(&path).unwrap();
        let mut mapped = dataset_from_map(&map, 0, map.len()).unwrap();
        mapped.push(&[4.0, 5.0, 6.0]).unwrap();
        assert!(!mapped.is_mapped(), "mutation must copy-on-write");
        assert_eq!(mapped.len(), d.len() + 1);
        assert_eq!(mapped.row(0), d.row(0));
        assert_eq!(mapped.row(3), &[4.0, 5.0, 6.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn clone_and_serde_of_a_mapped_dataset_behave_like_owned() {
        let d = toy();
        let path = write_temp("clone", &io::encode(&d));
        let map = map_file(&path).unwrap();
        let mapped = dataset_from_map(&map, 0, map.len()).unwrap();
        let cloned = mapped.clone();
        assert_eq!(cloned, d);
        let json = serde_json::to_string(&mapped).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert!(!back.is_mapped());
        assert_eq!(back, d);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            map_file("/nonexistent/nope.lafv"),
            Err(VectorError::Io(_))
        ));
    }
}
