//! Mutable delta segment and tombstone bitmap for the serving write path.
//!
//! The snapshot machinery serves a **frozen** base dataset (often straight
//! from a file mapping). Mutability is layered on top, LSM-style, with two
//! small owned structures:
//!
//! * [`DeltaSegment`] — an append-only, owned [`Dataset`] holding every row
//!   inserted since the base snapshot was built. Reads scan it linearly
//!   alongside the base engine; compaction folds it into a fresh base.
//! * [`TombstoneSet`] — a bitmap over the **physical row space** (base rows
//!   first, delta rows after) masking deleted rows out of every answer.
//!
//! ## Dense live ids
//!
//! Callers never see physical ids. Every query answer and every delete
//! target uses **dense live ids**: live rows numbered `0..live` in physical
//! order, exactly the row ids a from-scratch pipeline over the surviving
//! rows would use. The bitmap maintains an auxiliary per-word prefix count
//! so the physical→dense mapping (`dense = phys − rank(phys)`) is O(1) per
//! lookup, and the dense→physical inverse ([`TombstoneSet::select_live`])
//! is a binary search. Because compaction writes survivors in physical
//! order, dense ids are **stable across compaction** — which is what makes
//! replaying a delete-by-id log over a compacted base well-defined.

use crate::dataset::Dataset;
use crate::error::VectorError;

const WORD_BITS: usize = 64;

/// Bitmap over the physical row space marking deleted rows, with O(1)
/// physical→dense rank queries.
///
/// The set grows with the physical space (see [`TombstoneSet::grow_to`]);
/// marking is idempotent and reports whether the bit was newly set.
#[derive(Debug, Clone, Default)]
pub struct TombstoneSet {
    /// One bit per physical row; set = deleted.
    words: Vec<u64>,
    /// `prefix[w]` = number of set bits in `words[..w]` (exclusive), kept
    /// current by [`TombstoneSet::mark`] so rank queries never scan.
    prefix: Vec<u32>,
    /// Number of physical rows covered (bits beyond `len` are never set).
    len: usize,
    /// Total deleted rows.
    deleted: usize,
}

impl TombstoneSet {
    /// An empty set covering `len` physical rows.
    pub fn new(len: usize) -> Self {
        let words = len.div_ceil(WORD_BITS);
        Self {
            words: vec![0; words],
            prefix: vec![0; words],
            len,
            deleted: 0,
        }
    }

    /// Number of physical rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of deleted rows.
    pub fn deleted(&self) -> usize {
        self.deleted
    }

    /// Number of live (non-deleted) rows.
    pub fn live(&self) -> usize {
        self.len - self.deleted
    }

    /// Extend the covered physical space to `len` rows (new rows are live).
    /// Shrinking is not supported; a smaller `len` is a no-op.
    pub fn grow_to(&mut self, len: usize) {
        if len <= self.len {
            return;
        }
        self.len = len;
        let words = len.div_ceil(WORD_BITS);
        while self.words.len() < words {
            let carried = self
                .prefix
                .last()
                .copied()
                .unwrap_or(0)
                .wrapping_add(self.words.last().map_or(0, |w| w.count_ones()));
            self.words.push(0);
            self.prefix.push(carried);
        }
    }

    /// Mark physical row `i` deleted. Returns `true` if the row was live
    /// (the bit was newly set), `false` if it was already deleted.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn mark(&mut self, i: usize) -> bool {
        assert!(i < self.len, "tombstone index {i} out of {} rows", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let bit = 1u64 << b;
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.deleted += 1;
        for p in &mut self.prefix[w + 1..] {
            *p += 1;
        }
        true
    }

    /// Whether physical row `i` is deleted. Out-of-range rows read as live.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of deleted rows strictly below physical row `i` — the amount
    /// the physical id shifts down by when densified: for a live row,
    /// `dense = i - rank(i)`.
    pub fn rank(&self, i: usize) -> usize {
        let i = i.min(self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if w < self.words.len() {
            let mask = (1u64 << b) - 1; // b < 64 here since w would advance
            (self.words[w] & mask).count_ones() as usize + self.prefix[w] as usize
        } else {
            self.deleted
        }
    }

    /// Dense live id of physical row `i`, or `None` if the row is deleted.
    pub fn dense_of(&self, i: usize) -> Option<usize> {
        if self.contains(i) {
            None
        } else {
            Some(i - self.rank(i))
        }
    }

    /// Physical row of dense live id `d` — the inverse of
    /// [`TombstoneSet::dense_of`]. `None` if `d >= self.live()`.
    pub fn select_live(&self, d: usize) -> Option<usize> {
        if d >= self.live() {
            return None;
        }
        // dense(p) = p - rank(p) counts live rows strictly below p; it is
        // nondecreasing and steps by one exactly after each live row, so the
        // live row with dense id `d` is the largest p with dense(p) <= d.
        let (mut lo, mut hi) = (0usize, self.len); // invariant: dense(lo) <= d < dense(hi+?)
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if mid - self.rank(mid) <= d {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let p = lo - 1;
        debug_assert!(!self.contains(p) && p - self.rank(p) == d);
        Some(p)
    }

    /// Iterate the physical ids of all live rows, in physical order.
    pub fn iter_live(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.contains(i))
    }
}

/// Append-only segment of rows inserted since the base snapshot was built.
///
/// A thin wrapper over an owned [`Dataset`] that fixes the dimensionality to
/// the base dataset's and hands the rows to a linear-scan engine for the
/// merged read path. Physical ids of delta rows are `base_len + local`.
#[derive(Debug, Clone)]
pub struct DeltaSegment {
    rows: Dataset,
}

impl DeltaSegment {
    /// An empty segment for `dim`-dimensional rows.
    ///
    /// # Errors
    /// Returns [`VectorError`] when `dim` is zero.
    pub fn new(dim: usize) -> Result<Self, VectorError> {
        Ok(Self {
            rows: Dataset::new(dim)?,
        })
    }

    /// Number of rows in the segment.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.rows.dim()
    }

    /// Append a row; its delta-local id is the pre-append length.
    ///
    /// # Errors
    /// Returns [`VectorError`] on a dimensionality mismatch.
    pub fn push(&mut self, row: &[f32]) -> Result<usize, VectorError> {
        let local = self.rows.len();
        self.rows.push(row)?;
        Ok(local)
    }

    /// The `i`-th inserted row.
    pub fn row(&self, i: usize) -> &[f32] {
        self.rows.row(i)
    }

    /// The segment's rows as a [`Dataset`] (for the linear-scan read path
    /// and for compaction).
    pub fn dataset(&self) -> &Dataset {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_and_dense_track_marks() {
        let mut t = TombstoneSet::new(200);
        assert_eq!(t.live(), 200);
        assert!(t.mark(3));
        assert!(t.mark(64));
        assert!(t.mark(130));
        assert!(!t.mark(3), "second mark is a no-op");
        assert_eq!(t.deleted(), 3);
        assert!(t.contains(64) && !t.contains(65));
        assert_eq!(t.rank(0), 0);
        assert_eq!(t.rank(4), 1);
        assert_eq!(t.rank(64), 1);
        assert_eq!(t.rank(65), 2);
        assert_eq!(t.rank(200), 3);
        assert_eq!(t.dense_of(3), None);
        assert_eq!(t.dense_of(2), Some(2));
        assert_eq!(t.dense_of(4), Some(3));
        assert_eq!(t.dense_of(199), Some(196));
    }

    #[test]
    fn select_live_inverts_dense_of() {
        let mut t = TombstoneSet::new(300);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 255, 299] {
            t.mark(i);
        }
        for d in 0..t.live() {
            let p = t.select_live(d).unwrap();
            assert_eq!(t.dense_of(p), Some(d), "dense {d} -> phys {p}");
        }
        assert_eq!(t.select_live(t.live()), None);
        // Exhaustive agreement with the naive enumeration.
        let live: Vec<usize> = t.iter_live().collect();
        for (d, &p) in live.iter().enumerate() {
            assert_eq!(t.select_live(d), Some(p));
        }
    }

    #[test]
    fn grow_preserves_prefix_counts() {
        let mut t = TombstoneSet::new(10);
        t.mark(9);
        t.grow_to(500);
        assert_eq!(t.len(), 500);
        assert_eq!(t.rank(500), 1);
        assert!(t.mark(400));
        assert_eq!(t.rank(401), 2);
        assert_eq!(t.dense_of(499), Some(497));
        // Growing smaller is a no-op.
        t.grow_to(5);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn empty_set_is_all_live() {
        let t = TombstoneSet::new(0);
        assert!(t.is_empty());
        assert_eq!(t.select_live(0), None);
        let t = TombstoneSet::new(64);
        assert_eq!(t.rank(64), 0);
        assert_eq!(t.select_live(63), Some(63));
    }

    #[test]
    fn delta_segment_appends_and_reads_back() {
        let mut d = DeltaSegment::new(3).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.push(&[1.0, 0.0, 0.0]).unwrap(), 0);
        assert_eq!(d.push(&[0.0, 1.0, 0.0]).unwrap(), 1);
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.row(1), &[0.0, 1.0, 0.0]);
        assert!(d.push(&[1.0]).is_err(), "dimension mismatch rejected");
        assert_eq!(d.dataset().len(), 2);
    }
}
