//! Dataset (de)serialization.
//!
//! Two formats are provided:
//!
//! * a compact little-endian binary format (magic `LAFV`, version, header,
//!   raw `f32` payload) built on the [`bytes`] crate — this is what the
//!   experiment harness caches generated datasets in, and
//! * JSON via serde, for small fixtures and debugging.

use crate::dataset::Dataset;
use crate::error::VectorError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs;
use std::path::Path;

/// Magic bytes identifying the binary dataset format.
pub const MAGIC: &[u8; 4] = b"LAFV";
/// Current binary format version.
pub const FORMAT_VERSION: u32 = 1;
/// Size of the fixed header preceding the `f32` payload: magic (4) +
/// version (4) + row count (8) + dimensionality (4). The zero-copy mapped
/// loader ([`crate::mapped`]) relies on this to locate the payload, so it
/// lives here, next to the encoder that defines it.
pub const HEADER_LEN: usize = 20;

/// Exact number of bytes [`encode`] produces for `data` (header + payload).
pub fn encoded_len(data: &Dataset) -> usize {
    HEADER_LEN + data.len() * data.dim() * 4
}

/// Number of `f32` values converted per chunk by [`encode_chunked`]. 8 KiB
/// chunks keep the conversion buffer L1-resident while amortizing the
/// per-chunk call overhead.
const CHUNK_FLOATS: usize = 2048;

/// Stream the binary encoding of a dataset as a sequence of byte chunks.
///
/// This is the zero-materialization form of [`encode`]: the header and then
/// bounded-size blocks of the `f32` payload are handed to `emit` in order,
/// so callers (checksumming, file writers) never hold more than one chunk —
/// the snapshot writer in `laf-core` uses this to stream multi-hundred-MB
/// dataset sections straight to disk. The concatenated chunks are exactly
/// what [`decode`] accepts. Stops at the first `emit` error.
pub fn encode_chunked<E>(
    data: &Dataset,
    mut emit: impl FnMut(&[u8]) -> Result<(), E>,
) -> Result<(), E> {
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&(data.len() as u64).to_le_bytes());
    header.extend_from_slice(&(data.dim() as u32).to_le_bytes());
    emit(&header)?;
    let mut chunk = Vec::with_capacity(CHUNK_FLOATS * 4);
    for block in data.as_flat().chunks(CHUNK_FLOATS) {
        chunk.clear();
        for &x in block {
            chunk.extend_from_slice(&x.to_le_bytes());
        }
        emit(&chunk)?;
    }
    Ok(())
}

/// Append the binary encoding of a dataset to an existing buffer.
///
/// This is the composable form of [`encode`]: container formats (such as the
/// snapshot sections in `laf-core`) embed the flat-buffer encoding directly
/// in their own payload without an intermediate allocation. The bytes written
/// are exactly what [`decode`] accepts.
pub fn encode_into(data: &Dataset, buf: &mut impl BufMut) {
    match encode_chunked::<std::convert::Infallible>(data, |chunk| {
        buf.put_slice(chunk);
        Ok(())
    }) {
        Ok(()) => {}
        Err(e) => match e {},
    }
}

/// Encode a dataset into the binary format.
pub fn encode(data: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(data));
    encode_into(data, &mut buf);
    buf.freeze()
}

/// Validate the header and total size of an encoded dataset region without
/// touching the `f32` payload; returns `(rows, dim)`.
///
/// Shared by the copying decoder ([`decode`]) and the zero-copy mapped
/// loader ([`crate::mapped::dataset_from_map`]), which borrows the payload
/// in place after this structural check.
///
/// # Errors
/// Returns [`VectorError::MalformedPayload`] on bad magic, unsupported
/// version, zero dimensionality, or a payload whose byte count does not
/// match `rows * dim * 4` exactly.
pub fn validate_header(mut bytes: &[u8]) -> Result<(usize, usize), VectorError> {
    if bytes.len() < HEADER_LEN {
        return Err(VectorError::MalformedPayload(
            "payload shorter than header".to_string(),
        ));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(VectorError::MalformedPayload(format!(
            "bad magic {magic:?}"
        )));
    }
    let version = bytes.get_u32_le();
    if version != FORMAT_VERSION {
        return Err(VectorError::MalformedPayload(format!(
            "unsupported format version {version}"
        )));
    }
    let len = bytes.get_u64_le() as usize;
    let dim = bytes.get_u32_le() as usize;
    if dim == 0 {
        return Err(VectorError::MalformedPayload(
            "zero dimensionality".to_string(),
        ));
    }
    let expected = len
        .checked_mul(dim)
        .and_then(|n| n.checked_mul(4))
        .ok_or_else(|| VectorError::MalformedPayload("size overflow".to_string()))?;
    if bytes.remaining() != expected {
        return Err(VectorError::MalformedPayload(format!(
            "expected {expected} payload bytes, found {}",
            bytes.remaining()
        )));
    }
    Ok((len, dim))
}

/// Decode a dataset from the binary format produced by [`encode`].
///
/// # Errors
/// Returns [`VectorError::MalformedPayload`] on any structural problem
/// (bad magic, unsupported version, truncated payload, trailing bytes).
pub fn decode(bytes: &[u8]) -> Result<Dataset, VectorError> {
    let (len, dim) = validate_header(bytes)?;
    let mut payload = &bytes[HEADER_LEN..];
    let mut flat = Vec::with_capacity(len * dim);
    for _ in 0..len * dim {
        flat.push(payload.get_f32_le());
    }
    Dataset::from_flat(dim, flat)
}

/// Write a dataset to `path` in the binary format.
pub fn save_binary<P: AsRef<Path>>(data: &Dataset, path: P) -> Result<(), VectorError> {
    fs::write(path, encode(data))?;
    Ok(())
}

/// Read a dataset previously written with [`save_binary`].
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Dataset, VectorError> {
    let bytes = fs::read(path)?;
    decode(&bytes)
}

/// Write a dataset to `path` as JSON.
pub fn save_json<P: AsRef<Path>>(data: &Dataset, path: P) -> Result<(), VectorError> {
    let json = serde_json::to_string(data)?;
    fs::write(path, json)?;
    Ok(())
}

/// Read a dataset previously written with [`save_json`].
pub fn load_json<P: AsRef<Path>>(path: P) -> Result<Dataset, VectorError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(vec![
            vec![1.0f32, -2.5, 3.25],
            vec![0.0, 0.5, -0.125],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap()
    }

    #[test]
    fn binary_round_trip() {
        let d = toy();
        let bytes = encode(&d);
        assert_eq!(bytes.len(), encoded_len(&d));
        let back = decode(&bytes).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn encode_into_appends_to_an_existing_buffer() {
        let d = toy();
        let mut buf: Vec<u8> = vec![0xAA, 0xBB];
        encode_into(&d, &mut buf);
        assert_eq!(buf.len(), 2 + encoded_len(&d));
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        // The embedded section decodes standalone.
        assert_eq!(decode(&buf[2..]).unwrap(), d);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let d = toy();
        let mut bytes = encode(&d).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            decode(&bytes),
            Err(VectorError::MalformedPayload(_))
        ));
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let d = toy();
        let bytes = encode(&d).to_vec();
        assert!(decode(&bytes[..bytes.len() - 3]).is_err());
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0, 0, 0, 0]);
        assert!(decode(&extended).is_err());
        assert!(decode(&bytes[..10]).is_err());
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let d = toy();
        let mut bytes = encode(&d).to_vec();
        bytes[4] = 99;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn file_round_trips() {
        let d = toy();
        let dir = std::env::temp_dir().join("laf_vector_io_test");
        fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("toy.lafv");
        let json = dir.join("toy.json");
        save_binary(&d, &bin).unwrap();
        save_json(&d, &json).unwrap();
        assert_eq!(load_binary(&bin).unwrap(), d);
        assert_eq!(load_json(&json).unwrap(), d);
        fs::remove_file(bin).ok();
        fs::remove_file(json).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_binary("/nonexistent/definitely/not/here.lafv").unwrap_err();
        assert!(matches!(err, VectorError::Io(_)));
    }
}
