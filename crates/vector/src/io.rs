//! Dataset (de)serialization.
//!
//! Two formats are provided:
//!
//! * a compact little-endian binary format (magic `LAFV`, version, header,
//!   raw `f32` payload) built on the [`bytes`] crate — this is what the
//!   experiment harness caches generated datasets in, and
//! * JSON via serde, for small fixtures and debugging.

use crate::dataset::Dataset;
use crate::error::VectorError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs;
use std::path::Path;

/// Magic bytes identifying the binary dataset format.
pub const MAGIC: &[u8; 4] = b"LAFV";
/// Current binary format version.
pub const FORMAT_VERSION: u32 = 1;

/// Exact number of bytes [`encode`] produces for `data` (header + payload).
pub fn encoded_len(data: &Dataset) -> usize {
    20 + data.len() * data.dim() * 4
}

/// Append the binary encoding of a dataset to an existing buffer.
///
/// This is the composable form of [`encode`]: container formats (such as the
/// snapshot sections in `laf-core`) embed the flat-buffer encoding directly
/// in their own payload without an intermediate allocation. The bytes written
/// are exactly what [`decode`] accepts.
pub fn encode_into(data: &Dataset, buf: &mut impl BufMut) {
    buf.put_slice(MAGIC);
    buf.put_u32_le(FORMAT_VERSION);
    buf.put_u64_le(data.len() as u64);
    buf.put_u32_le(data.dim() as u32);
    for &x in data.as_flat() {
        buf.put_f32_le(x);
    }
}

/// Encode a dataset into the binary format.
pub fn encode(data: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(data));
    encode_into(data, &mut buf);
    buf.freeze()
}

/// Decode a dataset from the binary format produced by [`encode`].
///
/// # Errors
/// Returns [`VectorError::MalformedPayload`] on any structural problem
/// (bad magic, unsupported version, truncated payload, trailing bytes).
pub fn decode(mut bytes: &[u8]) -> Result<Dataset, VectorError> {
    if bytes.len() < 20 {
        return Err(VectorError::MalformedPayload(
            "payload shorter than header".to_string(),
        ));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(VectorError::MalformedPayload(format!(
            "bad magic {magic:?}"
        )));
    }
    let version = bytes.get_u32_le();
    if version != FORMAT_VERSION {
        return Err(VectorError::MalformedPayload(format!(
            "unsupported format version {version}"
        )));
    }
    let len = bytes.get_u64_le() as usize;
    let dim = bytes.get_u32_le() as usize;
    if dim == 0 {
        return Err(VectorError::MalformedPayload(
            "zero dimensionality".to_string(),
        ));
    }
    let expected = len
        .checked_mul(dim)
        .and_then(|n| n.checked_mul(4))
        .ok_or_else(|| VectorError::MalformedPayload("size overflow".to_string()))?;
    if bytes.remaining() != expected {
        return Err(VectorError::MalformedPayload(format!(
            "expected {expected} payload bytes, found {}",
            bytes.remaining()
        )));
    }
    let mut flat = Vec::with_capacity(len * dim);
    for _ in 0..len * dim {
        flat.push(bytes.get_f32_le());
    }
    Dataset::from_flat(dim, flat)
}

/// Write a dataset to `path` in the binary format.
pub fn save_binary<P: AsRef<Path>>(data: &Dataset, path: P) -> Result<(), VectorError> {
    fs::write(path, encode(data))?;
    Ok(())
}

/// Read a dataset previously written with [`save_binary`].
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Dataset, VectorError> {
    let bytes = fs::read(path)?;
    decode(&bytes)
}

/// Write a dataset to `path` as JSON.
pub fn save_json<P: AsRef<Path>>(data: &Dataset, path: P) -> Result<(), VectorError> {
    let json = serde_json::to_string(data)?;
    fs::write(path, json)?;
    Ok(())
}

/// Read a dataset previously written with [`save_json`].
pub fn load_json<P: AsRef<Path>>(path: P) -> Result<Dataset, VectorError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(vec![
            vec![1.0f32, -2.5, 3.25],
            vec![0.0, 0.5, -0.125],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap()
    }

    #[test]
    fn binary_round_trip() {
        let d = toy();
        let bytes = encode(&d);
        assert_eq!(bytes.len(), encoded_len(&d));
        let back = decode(&bytes).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn encode_into_appends_to_an_existing_buffer() {
        let d = toy();
        let mut buf: Vec<u8> = vec![0xAA, 0xBB];
        encode_into(&d, &mut buf);
        assert_eq!(buf.len(), 2 + encoded_len(&d));
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        // The embedded section decodes standalone.
        assert_eq!(decode(&buf[2..]).unwrap(), d);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let d = toy();
        let mut bytes = encode(&d).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            decode(&bytes),
            Err(VectorError::MalformedPayload(_))
        ));
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let d = toy();
        let bytes = encode(&d).to_vec();
        assert!(decode(&bytes[..bytes.len() - 3]).is_err());
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0, 0, 0, 0]);
        assert!(decode(&extended).is_err());
        assert!(decode(&bytes[..10]).is_err());
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let d = toy();
        let mut bytes = encode(&d).to_vec();
        bytes[4] = 99;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn file_round_trips() {
        let d = toy();
        let dir = std::env::temp_dir().join("laf_vector_io_test");
        fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("toy.lafv");
        let json = dir.join("toy.json");
        save_binary(&d, &bin).unwrap();
        save_json(&d, &json).unwrap();
        assert_eq!(load_binary(&bin).unwrap(), d);
        assert_eq!(load_json(&json).unwrap(), d);
        fs::remove_file(bin).ok();
        fs::remove_file(json).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_binary("/nonexistent/definitely/not/here.lafv").unwrap_err();
        assert!(matches!(err, VectorError::Io(_)));
    }
}
