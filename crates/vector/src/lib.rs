//! # laf-vector
//!
//! Dense vector substrate for the LAF-DBSCAN reproduction.
//!
//! The paper clusters high-dimensional, unit-normalized neural embeddings
//! under the **angular (cosine) distance**. This crate provides everything
//! the clustering and estimation layers need to talk about such data:
//!
//! * [`Dataset`] — a contiguous, row-major `f32` matrix with cheap row access,
//!   normalization, sampling and serialization, backed either by an owned
//!   buffer, zero-copy by a memory-mapped file ([`DataBacking`], built in
//!   [`mapped`]), or by a reference-counted window into a shared allocation
//!   ([`Dataset::slice_rows`] shard views).
//! * [`ShardMap`] — the shard-aware row-id mapping that rebases shard-local
//!   hits to global row ids for the scatter-gather engine.
//! * [`Distance`] — the distance-metric abstraction with [`CosineDistance`],
//!   [`AngularDistance`], [`EuclideanDistance`], [`SquaredEuclideanDistance`]
//!   and [`DotProductSimilarity`] implementations, plus the cosine↔Euclidean
//!   conversion of Equation (1) in the paper.
//! * [`MetricKernel`] — metric-specialized distance kernels: per-row norm
//!   caching ([`Dataset::row_norms`]), dot-only predicates with threshold
//!   pushdown, and the query-major [`ops::dot4`] mini-GEMM batch path, all
//!   bit-identical to the generic evaluation.
//! * [`DeltaSegment`] and [`TombstoneSet`] — the mutable-plane substrate:
//!   an append-only segment of inserted rows plus a deletion bitmap with
//!   O(1) physical→dense rank queries (see [`delta`]).
//! * [`GaussianRandomProjection`] — the ANN-benchmark-style dimensionality
//!   reduction the paper applies to the NYTimes bag-of-words vectors.
//! * [`fault`] — the deterministic failpoint registry the storage plane
//!   consults at its failure-prone edges (a no-op unless the
//!   `fault-injection` feature is enabled).
//! * low-level kernels in [`ops`] used by every other crate.
//!
//! All public items are documented; see the crate-level tests and the
//! property tests under `tests/` for the invariants the substrate upholds.

#![warn(missing_docs)]

pub mod dataset;
pub mod delta;
pub mod distance;
pub mod error;
pub mod fault;
pub mod io;
pub mod kernel;
pub mod mapped;
pub mod ops;
pub mod projection;
pub mod shard;
pub mod stats;

#[cfg(target_endian = "little")]
pub use dataset::MappedSlice;
pub use dataset::{DataBacking, Dataset, DatasetBuilder, RowNorms, SharedSlice};
pub use delta::{DeltaSegment, TombstoneSet};
pub use distance::{
    cosine_to_euclidean, euclidean_to_cosine, AngularDistance, CosineDistance, DistanceMetric,
    DotProductSimilarity, EuclideanDistance, Metric, SquaredEuclideanDistance,
};
pub use error::VectorError;
pub use fault::{FaultMode, FaultPlan};
pub use kernel::{MetricKernel, PreparedQuery, RangeProbe};
pub use projection::GaussianRandomProjection;
pub use shard::ShardMap;

/// Alias kept for API clarity: every distance used in this workspace is an
/// object-safe implementation of [`DistanceMetric`].
pub use distance::DistanceMetric as Distance;
