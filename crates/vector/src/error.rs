//! Error type shared across the vector substrate.

use std::fmt;

/// Errors produced by dataset construction, projection and serialization.
#[derive(Debug)]
pub enum VectorError {
    /// A row with a dimensionality different from the dataset's was supplied.
    DimensionMismatch {
        /// Dimensionality the dataset expects.
        expected: usize,
        /// Dimensionality that was provided.
        found: usize,
    },
    /// An operation required a non-empty dataset but the dataset had no rows.
    EmptyDataset,
    /// A row index outside `0..len` was requested.
    RowOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of rows in the dataset.
        len: usize,
    },
    /// The binary payload being decoded is malformed (wrong magic, truncated,
    /// or inconsistent header).
    MalformedPayload(String),
    /// Wrapper around I/O failures during load/save.
    Io(std::io::Error),
    /// Wrapper around JSON (de)serialization failures.
    Json(serde_json::Error),
    /// A parameter was outside its valid domain (e.g. zero target dimension).
    InvalidParameter(String),
}

impl fmt::Display for VectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            VectorError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            VectorError::RowOutOfBounds { index, len } => {
                write!(
                    f,
                    "row index {index} out of bounds for dataset of {len} rows"
                )
            }
            VectorError::MalformedPayload(msg) => write!(f, "malformed payload: {msg}"),
            VectorError::Io(e) => write!(f, "I/O error: {e}"),
            VectorError::Json(e) => write!(f, "JSON error: {e}"),
            VectorError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for VectorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VectorError::Io(e) => Some(e),
            VectorError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for VectorError {
    fn from(e: std::io::Error) -> Self {
        VectorError::Io(e)
    }
}

impl From<serde_json::Error> for VectorError {
    fn from(e: serde_json::Error) -> Self {
        VectorError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = VectorError::DimensionMismatch {
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = VectorError::RowOutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("3"));
        assert!(VectorError::EmptyDataset.to_string().contains("non-empty"));
    }

    #[test]
    fn io_error_converts_and_exposes_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: VectorError = io.into();
        assert!(matches!(e, VectorError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
