use laf_vector::{Dataset, Metric, MetricKernel};

#[test]
fn euclid_tile_agrees_in_subnormal_range() {
    // Magnitudes where f32 squares land in the subnormal range: the
    // relative-error model behind the pushdown band breaks down here.
    let mut diverged = Vec::new();
    for metric in [Metric::Euclidean, Metric::SquaredEuclidean] {
        let kernel = MetricKernel::new(metric);
        for scale in [1e-23f32, 3e-23, 5e-23, 1e-22, 3e-22] {
            let q = vec![scale, 0.0];
            let row = vec![-scale, 0.0];
            let data = Dataset::from_rows(vec![row.clone()]).unwrap();
            let norms = data.row_norms();
            let exact = metric.dist(&q, &row);
            for mult in [0.5f32, 0.9, 0.99, 1.0, 1.01, 1.1, 2.0] {
                let eps = exact * mult;
                let expected = exact < eps;
                let probe = kernel.probe(&q, eps);
                let probes = [probe, probe, probe, probe];
                let lanes = kernel.within4(&probes, &row, norms.norm(0), norms.sq(0));
                if lanes != [expected; 4] {
                    diverged.push((metric, scale, eps, exact, lanes[0], expected));
                }
            }
        }
    }
    assert!(diverged.is_empty(), "divergences: {diverged:?}");
}
