//! Property-based agreement tests for the metric-specialized kernels.
//!
//! The kernel layer's whole contract is: same bits as the generic
//! [`Metric::dist`] evaluation, only cheaper. These tests hammer that
//! contract across every built-in metric, odd dimensions (tail handling of
//! the unrolled dot kernels), zero and near-zero vectors (degenerate-norm
//! semantics), unnormalized data, and thresholds parked right on top of the
//! computed distances (the Euclidean pushdown's fallback band).

use laf_vector::{ops, Dataset, Metric, MetricKernel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Unnormalized vector over a wide magnitude range; roughly one in four
/// coordinates is an exact zero so degenerate rows occur naturally.
fn raw_vector(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim)
        .map(|_| {
            if rng.gen_range(0..4) == 0 {
                0.0
            } else {
                rng.gen_range(-100.0f32..100.0)
            }
        })
        .collect()
}

/// A dataset of unnormalized rows plus one all-zero row (similarity-0
/// semantics) and one vanishingly small row (just below the 1e-12 cutoff).
fn raw_dataset(rng: &mut StdRng, dim: usize, rows: usize) -> Dataset {
    let mut r: Vec<Vec<f32>> = (0..rows).map(|_| raw_vector(rng, dim)).collect();
    r.push(vec![0.0; dim]);
    r.push(vec![1e-13; dim]);
    Dataset::from_rows(r).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn dot4_is_bit_identical_to_dot(dim in 1usize..40, seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = raw_vector(&mut rng, dim);
        let qs: Vec<Vec<f32>> = (0..4).map(|_| raw_vector(&mut rng, dim)).collect();
        let tiled = ops::dot4(&qs[0], &qs[1], &qs[2], &qs[3], &x);
        for lane in 0..4 {
            prop_assert_eq!(tiled[lane].to_bits(), ops::dot(&qs[lane], &x).to_bits());
        }
    }

    #[test]
    fn kernel_dist_is_bit_identical_across_metrics_and_odd_dims(
        dim in 1usize..24,
        seed in 0u64..100_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = raw_dataset(&mut rng, dim, 6);
        let q = raw_vector(&mut rng, dim);
        let norms = data.row_norms();
        for metric in Metric::ALL {
            let kernel = MetricKernel::new(metric);
            let prep = kernel.prepare(&q);
            for (i, row) in data.rows().enumerate() {
                prop_assert_eq!(
                    kernel.dist(&prep, row, norms.norm(i)).to_bits(),
                    metric.dist(&q, row).to_bits(),
                    "{:?} dim {} row {}", metric, dim, i
                );
            }
        }
    }

    #[test]
    fn kernel_predicates_agree_with_generic_comparison(
        dim in 1usize..24,
        seed in 0u64..100_000,
        eps_raw in -1.5f32..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = raw_dataset(&mut rng, dim, 8);
        let q = raw_vector(&mut rng, dim);
        let norms = data.row_norms();
        for metric in Metric::ALL {
            let kernel = MetricKernel::new(metric);
            // Sweep the raw eps plus thresholds sitting exactly on computed
            // distances (the hardest case for the pushdown band).
            let mut eps_values = vec![eps_raw, -eps_raw, 0.0, f32::INFINITY];
            for row in data.rows().take(3) {
                eps_values.push(metric.dist(&q, row));
            }
            for eps in eps_values {
                let probe = kernel.probe(&q, eps);
                for (i, row) in data.rows().enumerate() {
                    prop_assert_eq!(
                        kernel.within(&probe, row, norms.norm(i), norms.sq(i)),
                        metric.dist(&q, row) < eps,
                        "{:?} dim {} row {} eps {}", metric, dim, i, eps
                    );
                }
            }
        }
    }

    #[test]
    fn within4_lanes_agree_with_generic_comparison(
        dim in 1usize..20,
        seed in 0u64..100_000,
        eps in -0.5f32..2.5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = raw_dataset(&mut rng, dim, 6);
        let queries: Vec<Vec<f32>> = (0..4).map(|_| raw_vector(&mut rng, dim)).collect();
        let norms = data.row_norms();
        for metric in Metric::ALL {
            let kernel = MetricKernel::new(metric);
            let probes = [
                kernel.probe(&queries[0], eps),
                kernel.probe(&queries[1], eps),
                kernel.probe(&queries[2], eps),
                kernel.probe(&queries[3], eps),
            ];
            for (i, row) in data.rows().enumerate() {
                let lanes = kernel.within4(&probes, row, norms.norm(i), norms.sq(i));
                for (lane, q) in queries.iter().enumerate() {
                    prop_assert_eq!(
                        lanes[lane],
                        metric.dist(q, row) < eps,
                        "{:?} dim {} row {} lane {}", metric, dim, i, lane
                    );
                }
            }
        }
    }

    #[test]
    fn row_norm_cache_matches_fresh_computation(
        dim in 1usize..24,
        seed in 0u64..100_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = raw_dataset(&mut rng, dim, 10);
        let norms = data.row_norms();
        for (i, row) in data.rows().enumerate() {
            prop_assert_eq!(norms.norm(i).to_bits(), ops::norm(row).to_bits());
            prop_assert_eq!(norms.sq(i).to_bits(), ops::dot(row, row).to_bits());
        }
    }
}

/// The mapped and owned backings must serve bit-identical kernels: a mapped
/// dataset's lazily-built norm cache equals the owned one's, and every
/// kernel decision matches across backings.
#[test]
fn kernel_agreement_between_owned_and_mapped_backings() {
    use std::io::Write;

    let rows: Vec<Vec<f32>> = (0..30)
        .map(|i| {
            (0..13)
                .map(|j| ((i * 13 + j) as f32 * 0.17).sin() * 4.0)
                .collect()
        })
        .collect();
    let owned = Dataset::from_rows(rows).unwrap();
    let path = std::env::temp_dir().join(format!(
        "laf_vector_kernel_mapped_{}.bin",
        std::process::id()
    ));
    std::fs::File::create(&path)
        .unwrap()
        .write_all(&laf_vector::io::encode(&owned))
        .unwrap();
    let map = laf_vector::mapped::map_file(&path).unwrap();
    let mapped = laf_vector::mapped::dataset_from_map(&map, 0, map.len()).unwrap();
    assert!(cfg!(target_endian = "big") || mapped.is_mapped());

    let owned_norms = owned.row_norms();
    let mapped_norms = mapped.row_norms();
    assert_eq!(owned_norms.norms(), mapped_norms.norms());
    assert_eq!(owned_norms.sq_norms(), mapped_norms.sq_norms());

    let q: Vec<f32> = (0..13).map(|j| (j as f32 * 0.9).cos()).collect();
    for metric in Metric::ALL {
        let kernel = MetricKernel::new(metric);
        let probe = kernel.probe(&q, 0.4);
        let prep = kernel.prepare(&q);
        for i in 0..owned.len() {
            assert_eq!(
                kernel.within(&probe, owned.row(i), owned_norms.norm(i), owned_norms.sq(i)),
                kernel.within(
                    &probe,
                    mapped.row(i),
                    mapped_norms.norm(i),
                    mapped_norms.sq(i)
                ),
                "{metric:?} row {i}"
            );
            assert_eq!(
                kernel
                    .dist(&prep, owned.row(i), owned_norms.norm(i))
                    .to_bits(),
                kernel
                    .dist(&prep, mapped.row(i), mapped_norms.norm(i))
                    .to_bits(),
                "{metric:?} row {i}"
            );
        }
    }
    std::fs::remove_file(path).ok();
}
