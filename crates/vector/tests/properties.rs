//! Property-based tests for the vector substrate.

use laf_vector::{
    cosine_to_euclidean, euclidean_to_cosine, io, ops, AngularDistance, CosineDistance, Dataset,
    DistanceMetric, EuclideanDistance, Metric,
};
use proptest::prelude::*;

/// Strategy producing a non-degenerate vector of the given dimension.
fn vector(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, dim).prop_filter("non-zero norm", |v| ops::norm(v) > 1e-3)
}

fn unit_vector(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    vector(dim).prop_map(|mut v| {
        ops::normalize_in_place(&mut v);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cosine_distance_is_bounded_and_symmetric(a in unit_vector(16), b in unit_vector(16)) {
        let d_ab = CosineDistance.dist(&a, &b);
        let d_ba = CosineDistance.dist(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-5);
        prop_assert!((-1e-5..=2.0 + 1e-5).contains(&d_ab));
    }

    #[test]
    fn cosine_self_distance_is_zero(a in unit_vector(24)) {
        prop_assert!(CosineDistance.dist(&a, &a).abs() < 1e-4);
    }

    #[test]
    fn angular_distance_triangle_inequality(
        a in unit_vector(8), b in unit_vector(8), c in unit_vector(8)
    ) {
        // Angular distance is a proper metric on the unit sphere.
        let ab = AngularDistance.dist(&a, &b);
        let bc = AngularDistance.dist(&b, &c);
        let ac = AngularDistance.dist(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-4, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn equation_1_holds_on_unit_vectors(a in unit_vector(32), b in unit_vector(32)) {
        let d_cos = CosineDistance.dist(&a, &b);
        let d_euc = EuclideanDistance.dist(&a, &b);
        prop_assert!((cosine_to_euclidean(d_cos) - d_euc).abs() < 1e-3,
            "cos={d_cos} euc={d_euc}");
        prop_assert!((euclidean_to_cosine(d_euc) - d_cos).abs() < 1e-3);
    }

    #[test]
    fn equation_1_round_trips_on_the_valid_domain(d_cos in 0.0f32..2.0) {
        // Cosine distances live in [0, 2]; the conversion into Euclidean
        // space and back must be the identity within float tolerance.
        let d_euc = cosine_to_euclidean(d_cos);
        prop_assert!((0.0..=2.0).contains(&d_euc), "euclidean {d_euc} out of range");
        let back = euclidean_to_cosine(d_euc);
        prop_assert!((back - d_cos).abs() < 1e-5, "d_cos={d_cos} back={back}");
    }

    #[test]
    fn equation_1_clamps_out_of_domain_inputs(x in -10.0f32..10.0) {
        // Inputs outside [0, 2] (impossible for unit vectors, but reachable
        // through misuse or float drift) are clamped into the valid domain
        // instead of producing negative or >2 "distances".
        let e = cosine_to_euclidean(x);
        prop_assert!((0.0..=2.0).contains(&e), "cosine_to_euclidean({x}) = {e}");
        let c = euclidean_to_cosine(x);
        prop_assert!((0.0..=2.0).contains(&c), "euclidean_to_cosine({x}) = {c}");
        // Clamping is saturation: in-domain inputs are untouched.
        if (0.0..=2.0).contains(&x) {
            prop_assert_eq!(c, x * x / 2.0);
        }
    }

    #[test]
    fn euclidean_triangle_inequality(a in vector(12), b in vector(12), c in vector(12)) {
        let ab = EuclideanDistance.dist(&a, &b);
        let bc = EuclideanDistance.dist(&b, &c);
        let ac = EuclideanDistance.dist(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn metric_enum_agrees_with_impls(a in unit_vector(10), b in unit_vector(10)) {
        prop_assert_eq!(Metric::Cosine.dist(&a, &b), CosineDistance.dist(&a, &b));
        prop_assert_eq!(Metric::Euclidean.dist(&a, &b), EuclideanDistance.dist(&a, &b));
        prop_assert_eq!(Metric::Angular.dist(&a, &b), AngularDistance.dist(&a, &b));
    }

    #[test]
    fn dataset_normalization_is_idempotent(
        rows in prop::collection::vec(vector(6), 1..20)
    ) {
        let mut d = Dataset::from_rows(rows).unwrap();
        d.normalize();
        let once = d.clone();
        d.normalize();
        for (a, b) in once.rows().zip(d.rows()) {
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }
        prop_assert!(d.is_normalized(1e-3));
    }

    #[test]
    fn binary_encoding_round_trips(
        rows in prop::collection::vec(prop::collection::vec(-100.0f32..100.0, 5), 1..30)
    ) {
        let d = Dataset::from_rows(rows).unwrap();
        let bytes = io::encode(&d);
        let back = io::decode(&bytes).unwrap();
        prop_assert_eq!(d, back);
    }

    #[test]
    fn sample_indices_are_unique_and_valid(
        rows in prop::collection::vec(vector(4), 2..40),
        count in 1usize..40,
        seed in any::<u64>()
    ) {
        use rand::SeedableRng;
        let d = Dataset::from_rows(rows).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (sample, idx) = d.sample(count, &mut rng);
        prop_assert_eq!(sample.len(), idx.len());
        prop_assert!(sample.len() <= d.len());
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), idx.len(), "duplicate sample indices");
        prop_assert!(idx.iter().all(|&i| i < d.len()));
    }

    #[test]
    fn train_test_split_is_a_partition(
        rows in prop::collection::vec(vector(3), 2..50),
        frac in 0.1f64..0.9,
        seed in any::<u64>()
    ) {
        use rand::SeedableRng;
        let d = Dataset::from_rows(rows).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (train, test) = d.train_test_split(frac, &mut rng);
        prop_assert_eq!(train.len() + test.len(), d.len());
    }
}
