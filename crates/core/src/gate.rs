//! The cardinality-estimation gate placed in front of every range query.

use crate::config::LafConfig;
use laf_cardest::CardinalityEstimator;
use std::cell::Cell;

/// Wraps a [`CardinalityEstimator`] together with the `α·τ` skip threshold
/// and counts how the gate decided.
///
/// The gate answers one question: *may the range query for this point be
/// skipped?* It may be skipped exactly when the predicted cardinality is
/// finite and below `α·τ` (lines 6 and 22 of Algorithm 1). Non-finite
/// predictions (a failing estimator) conservatively execute the query, so a
/// broken model can never corrupt the clustering — only slow it down.
pub struct CardEstGate<'a> {
    estimator: &'a dyn CardinalityEstimator,
    eps: f32,
    threshold: f32,
    calls: Cell<u64>,
    skips: Cell<u64>,
}

impl<'a> CardEstGate<'a> {
    /// Build the gate for one clustering run.
    pub fn new(estimator: &'a dyn CardinalityEstimator, config: &LafConfig) -> Self {
        Self {
            estimator,
            eps: config.eps,
            threshold: config.skip_threshold(),
            calls: Cell::new(0),
            skips: Cell::new(0),
        }
    }

    /// `true` when the estimator predicts `query` is a stop point
    /// (non-core / noise) and its range query can be skipped.
    pub fn predicts_stop_point(&self, query: &[f32]) -> bool {
        self.calls.set(self.calls.get() + 1);
        let prediction = self.estimator.estimate(query, self.eps);
        let skip = prediction.is_finite() && prediction < self.threshold;
        if skip {
            self.skips.set(self.skips.get() + 1);
        }
        skip
    }

    /// Number of gate decisions made so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Number of decisions that skipped the range query.
    pub fn skips(&self) -> u64 {
        self.skips.get()
    }

    /// The `α·τ` threshold in use.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::ConstantEstimator;

    #[test]
    fn gate_skips_below_threshold_only() {
        let cfg = LafConfig::new(0.5, 5, 2.0); // threshold 10
        let low = ConstantEstimator::new(3.0);
        let gate = CardEstGate::new(&low, &cfg);
        assert!(gate.predicts_stop_point(&[0.0]));
        assert_eq!(gate.threshold(), 10.0);

        let high = ConstantEstimator::new(50.0);
        let gate = CardEstGate::new(&high, &cfg);
        assert!(!gate.predicts_stop_point(&[0.0]));
        assert_eq!(gate.calls(), 1);
        assert_eq!(gate.skips(), 0);
    }

    #[test]
    fn non_finite_predictions_never_skip() {
        let cfg = LafConfig::new(0.5, 3, 1.0);
        for value in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let broken = ConstantEstimator::new(value);
            let gate = CardEstGate::new(&broken, &cfg);
            // NEG_INFINITY is non-finite too: still execute the query.
            assert!(!gate.predicts_stop_point(&[1.0]), "value {value}");
        }
    }

    #[test]
    fn counters_accumulate() {
        let cfg = LafConfig::new(0.5, 3, 1.0);
        let est = ConstantEstimator::new(0.0);
        let gate = CardEstGate::new(&est, &cfg);
        for _ in 0..5 {
            assert!(gate.predicts_stop_point(&[0.0]));
        }
        assert_eq!(gate.calls(), 5);
        assert_eq!(gate.skips(), 5);
    }
}
