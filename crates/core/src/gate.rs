//! The cardinality-estimation gate placed in front of every range query.

use crate::config::LafConfig;
use laf_cardest::CardinalityEstimator;
use laf_vector::Dataset;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of points fed to [`laf_cardest::CardinalityEstimator::estimate_batch`]
/// per prescan batch. Batches are distributed over the rayon thread pool, so
/// this bounds both the matrix size of an MLP forward pass and the
/// granularity of the parallel split.
pub const PRESCAN_BATCH: usize = 256;

/// Outcome of one gate decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// The estimator predicts a stop point: the range query may be skipped.
    Skip,
    /// The range query must be executed (predicted core, or the prediction
    /// was non-finite and the gate fell back to executing).
    Execute,
}

/// Precomputed gate decisions for every point of a dataset, produced by
/// [`CardEstGate::prescan`].
///
/// The decisions are indexed by dataset row. Consuming a decision through
/// [`CardEstGate::decide`] updates the gate's call/skip counters exactly as a
/// sequential [`CardEstGate::predicts_stop_point`] call would, so the
/// bookkeeping (and therefore [`crate::LafStats`]) is identical between the
/// prescan-driven and the point-at-a-time execution models.
#[derive(Debug, Clone)]
pub struct Prescan {
    decisions: Vec<GateDecision>,
    /// Number of estimator batches the prescan issued.
    pub batches: u64,
    /// Size of every batch except possibly the last: the prescanned row count
    /// capped at [`PRESCAN_BATCH`] (0 when nothing was prescanned).
    pub batch_size: u64,
    /// Size of the final batch actually fed to `estimate_batch`. Equals
    /// [`Prescan::batch_size`] when the row count divides evenly into full
    /// batches; smaller when the tail batch is short; 0 when nothing was
    /// prescanned.
    pub last_batch_size: u64,
}

impl Prescan {
    /// Decision for dataset row `idx`, without touching any counters.
    pub fn decision(&self, idx: usize) -> GateDecision {
        self.decisions[idx]
    }

    /// Number of prescanned points.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// `true` when no points were prescanned.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Number of points predicted to be stop points.
    pub fn predicted_stop_points(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| **d == GateDecision::Skip)
            .count()
    }
}

/// Wraps a [`CardinalityEstimator`] together with the `α·τ` skip threshold
/// and counts how the gate decided.
///
/// The gate answers one question: *may the range query for this point be
/// skipped?* It may be skipped exactly when the predicted cardinality is
/// finite and below `α·τ` (lines 6 and 22 of Algorithm 1). Non-finite
/// predictions (a failing estimator) conservatively execute the query, so a
/// broken model can never corrupt the clustering — only slow it down.
///
/// Counters are atomic (relaxed), so a gate shared across threads — e.g.
/// during the parallel [`CardEstGate::prescan`] — stays consistent.
pub struct CardEstGate<'a> {
    estimator: &'a dyn CardinalityEstimator,
    eps: f32,
    threshold: f32,
    calls: AtomicU64,
    skips: AtomicU64,
}

impl<'a> CardEstGate<'a> {
    /// Build the gate for one clustering run.
    pub fn new(estimator: &'a dyn CardinalityEstimator, config: &LafConfig) -> Self {
        Self {
            estimator,
            eps: config.eps,
            threshold: config.skip_threshold(),
            calls: AtomicU64::new(0),
            skips: AtomicU64::new(0),
        }
    }

    /// Classify one raw prediction. `Skip` exactly when the prediction is
    /// finite and below the `α·τ` threshold.
    fn classify(&self, prediction: f32) -> GateDecision {
        if prediction.is_finite() && prediction < self.threshold {
            GateDecision::Skip
        } else {
            GateDecision::Execute
        }
    }

    /// `true` when the estimator predicts `query` is a stop point
    /// (non-core / noise) and its range query can be skipped.
    pub fn predicts_stop_point(&self, query: &[f32]) -> bool {
        let prediction = self.estimator.estimate(query, self.eps);
        self.record(self.classify(prediction))
    }

    /// Batch-predict the cardinality of **every** dataset row up front.
    ///
    /// Rows are chunked into [`PRESCAN_BATCH`]-sized batches, the batches are
    /// fanned out over the current rayon thread pool, and each batch runs one
    /// [`CardinalityEstimator::estimate_batch`] call (a single matrix-shaped
    /// forward pass for the MLP estimator). Because `estimate_batch` is
    /// bit-exact with per-query `estimate`, the returned decisions are
    /// byte-identical to what the sequential gate would have decided at each
    /// point — Algorithm 1 consumes them via [`CardEstGate::decide`] without
    /// any behavioral difference.
    ///
    /// The call/skip counters are **not** advanced here: a prescan is a
    /// prediction pass, not a decision pass. Counters advance when the
    /// clustering loop actually consumes a decision, keeping
    /// `calls == skips + executed` regardless of execution model.
    ///
    /// Both batched estimator paths run on the shared mini-GEMM kernels of
    /// `laf_vector::ops::dot4`: the MLP's `predict_batch` streams four batch
    /// activations per weight-row load, and the exact oracle's
    /// `range_count_batch` goes through the linear scan's specialized
    /// query-major kernel — so the prescan inherits the kernel layer's
    /// speedups without any change here.
    pub fn prescan(&self, data: &Dataset) -> Prescan {
        let rows: Vec<&[f32]> = data.rows().collect();
        self.prescan_rows(&rows)
    }

    /// Batch-predict the cardinality of an explicit row subset. Decisions are
    /// indexed by **position in `rows`**, not by dataset row — LAF-DBSCAN++
    /// uses this to prescan only its sampled points, so the estimator cost
    /// stays proportional to the sample size the algorithm's sampling exists
    /// to achieve. Same batching, parallelism and counter semantics as
    /// [`CardEstGate::prescan`].
    pub fn prescan_rows(&self, rows: &[&[f32]]) -> Prescan {
        let decisions: Vec<Vec<GateDecision>> = rows
            .par_chunks(PRESCAN_BATCH)
            .map(|batch| {
                self.estimator
                    .estimate_batch(batch, self.eps)
                    .into_iter()
                    .map(|p| self.classify(p))
                    .collect()
            })
            .collect();
        let batches = decisions.len() as u64;
        // Per-run batch accounting: every batch is PRESCAN_BATCH long (capped
        // at the row count) except the final one, which holds the remainder.
        let last_batch_size = match rows.len() % PRESCAN_BATCH {
            0 => rows.len().min(PRESCAN_BATCH) as u64,
            tail => tail as u64,
        };
        Prescan {
            decisions: decisions.into_iter().flatten().collect(),
            batches,
            batch_size: rows.len().min(PRESCAN_BATCH) as u64,
            last_batch_size,
        }
    }

    /// Consume the prescanned decision for row `idx`: returns `true` when
    /// the range query may be skipped, advancing the call/skip counters
    /// exactly like [`CardEstGate::predicts_stop_point`].
    pub fn decide(&self, prescan: &Prescan, idx: usize) -> bool {
        self.record(prescan.decision(idx))
    }

    fn record(&self, decision: GateDecision) -> bool {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let skip = decision == GateDecision::Skip;
        if skip {
            self.skips.fetch_add(1, Ordering::Relaxed);
        }
        skip
    }

    /// Number of gate decisions made so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Number of decisions that skipped the range query.
    pub fn skips(&self) -> u64 {
        self.skips.load(Ordering::Relaxed)
    }

    /// The `α·τ` threshold in use.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::{ConstantEstimator, ExactEstimator};
    use laf_vector::Metric;

    #[test]
    fn gate_skips_below_threshold_only() {
        let cfg = LafConfig::new(0.5, 5, 2.0); // threshold 10
        let low = ConstantEstimator::new(3.0);
        let gate = CardEstGate::new(&low, &cfg);
        assert!(gate.predicts_stop_point(&[0.0]));
        assert_eq!(gate.threshold(), 10.0);

        let high = ConstantEstimator::new(50.0);
        let gate = CardEstGate::new(&high, &cfg);
        assert!(!gate.predicts_stop_point(&[0.0]));
        assert_eq!(gate.calls(), 1);
        assert_eq!(gate.skips(), 0);
    }

    #[test]
    fn non_finite_predictions_never_skip() {
        let cfg = LafConfig::new(0.5, 3, 1.0);
        for value in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let broken = ConstantEstimator::new(value);
            let gate = CardEstGate::new(&broken, &cfg);
            // NEG_INFINITY is non-finite too: still execute the query.
            assert!(!gate.predicts_stop_point(&[1.0]), "value {value}");
        }
    }

    #[test]
    fn counters_accumulate() {
        let cfg = LafConfig::new(0.5, 3, 1.0);
        let est = ConstantEstimator::new(0.0);
        let gate = CardEstGate::new(&est, &cfg);
        for _ in 0..5 {
            assert!(gate.predicts_stop_point(&[0.0]));
        }
        assert_eq!(gate.calls(), 5);
        assert_eq!(gate.skips(), 5);
    }

    #[test]
    fn prescan_matches_sequential_decisions_and_counts_nothing() {
        let mut data = laf_vector::Dataset::new(2).unwrap();
        for i in 0..600 {
            let angle = i as f32 * 0.01;
            data.push(&[angle.cos(), angle.sin()]).unwrap();
        }
        let est = ExactEstimator::new(&data, Metric::Cosine);
        let cfg = LafConfig::new(0.05, 30, 1.0);
        let gate = CardEstGate::new(&est, &cfg);

        let prescan = gate.prescan(&data);
        assert_eq!(prescan.len(), data.len());
        assert!(prescan.batches >= 2, "600 points should span >= 2 batches");
        assert_eq!(prescan.batch_size, PRESCAN_BATCH as u64);
        // 600 = 2 full batches of 256 + a short tail of 88: the accounting
        // must report the tail, not the capped first-batch size.
        assert_eq!(prescan.batches, 3);
        assert_eq!(prescan.last_batch_size, 88);
        // Prescan does not advance the decision counters.
        assert_eq!(gate.calls(), 0);
        assert_eq!(gate.skips(), 0);

        // Every prescanned decision equals the sequential gate decision, and
        // consuming them advances the counters identically.
        for i in 0..data.len() {
            let sequential = gate.predicts_stop_point(data.row(i));
            let precomputed = gate.decide(&prescan, i);
            assert_eq!(sequential, precomputed, "row {i}");
        }
        assert_eq!(gate.calls(), 2 * data.len() as u64);
    }

    #[test]
    fn prescan_counts_predicted_stop_points() {
        let mut data = laf_vector::Dataset::new(2).unwrap();
        data.push(&[1.0, 0.0]).unwrap();
        data.push(&[0.0, 1.0]).unwrap();
        let zero = ConstantEstimator::new(0.0);
        let cfg = LafConfig::new(0.5, 3, 1.0);
        let gate = CardEstGate::new(&zero, &cfg);
        let prescan = gate.prescan(&data);
        assert!(!prescan.is_empty());
        assert_eq!(prescan.predicted_stop_points(), 2);
        assert_eq!(prescan.decision(0), GateDecision::Skip);
        // A single short batch: full and last sizes coincide.
        assert_eq!(prescan.batches, 1);
        assert_eq!(prescan.batch_size, 2);
        assert_eq!(prescan.last_batch_size, 2);
    }

    #[test]
    fn prescan_batch_accounting_on_exact_multiples_and_empty_sets() {
        let zero = ConstantEstimator::new(0.0);
        let cfg = LafConfig::new(0.5, 3, 1.0);
        let gate = CardEstGate::new(&zero, &cfg);

        // Exactly 2 full batches: the last batch is a full one.
        let row = vec![1.0f32, 0.0];
        let rows: Vec<&[f32]> = (0..2 * PRESCAN_BATCH).map(|_| row.as_slice()).collect();
        let prescan = gate.prescan_rows(&rows);
        assert_eq!(prescan.batches, 2);
        assert_eq!(prescan.batch_size, PRESCAN_BATCH as u64);
        assert_eq!(prescan.last_batch_size, PRESCAN_BATCH as u64);

        // Nothing prescanned: all counts are zero.
        let prescan = gate.prescan_rows(&[]);
        assert!(prescan.is_empty());
        assert_eq!(prescan.batches, 0);
        assert_eq!(prescan.batch_size, 0);
        assert_eq!(prescan.last_batch_size, 0);
    }
}
