//! LAF-DBSCAN++ — the LAF plugin applied to the sampling-based DBSCAN++.
//!
//! The paper uses this algorithm to demonstrate that LAF is generic: the same
//! two modules (cardinality-estimation gate and post-processing) accelerate
//! DBSCAN++ as well. Concretely:
//!
//! * the sample fraction is chosen as `p = δ + R_c`, where `R_c` is the
//!   fraction of points the estimator predicts to be core and δ is a
//!   user-supplied offset in 0.1–0.3 (Section 3.1 of the paper);
//! * inside the sampled subset, every core-detection range query is gated by
//!   the estimator with the fixed error factor α = 1.0;
//! * skipped points are tracked in the partial-neighbor map and the standard
//!   post-processing merges wrongly separated clusters at the end.

use crate::config::{LafConfig, LafStats};
use crate::gate::CardEstGate;
use crate::partial::PartialNeighborMap;
use crate::post::PostProcessor;
use laf_cardest::CardinalityEstimator;
use laf_clustering::{
    Clusterer, Clustering, DbscanPlusPlus, DbscanPlusPlusConfig, NOISE, UNDEFINED,
};
use laf_index::build_engine;
use laf_vector::Dataset;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Parameters specific to LAF-DBSCAN++ (everything else lives in
/// [`LafConfig`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LafDbscanPlusPlusConfig {
    /// Shared LAF parameters. The paper fixes `alpha = 1.0` for this
    /// algorithm; the field is honored as configured so ablations can vary it.
    pub laf: LafConfig,
    /// Offset δ added to the predicted core ratio when choosing the sample
    /// fraction (paper: 0.1–0.3).
    pub delta: f64,
    /// Number of points used to estimate the predicted-core ratio `R_c`
    /// (capped at the dataset size).
    pub core_ratio_probe: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for LafDbscanPlusPlusConfig {
    fn default() -> Self {
        Self {
            laf: LafConfig {
                alpha: 1.0,
                ..LafConfig::default()
            },
            delta: 0.2,
            core_ratio_probe: 1_000,
            seed: 0xDB5C,
        }
    }
}

impl LafDbscanPlusPlusConfig {
    /// Convenience constructor (α stays 1.0 as in the paper).
    pub fn new(eps: f32, min_pts: usize, delta: f64) -> Self {
        Self {
            laf: LafConfig {
                eps,
                min_pts,
                alpha: 1.0,
                ..LafConfig::default()
            },
            delta,
            ..Default::default()
        }
    }
}

/// Run `op` inside `pool` when one was built, on the ambient pool otherwise.
fn install_in<R>(pool: &Option<rayon::ThreadPool>, op: impl FnOnce() -> R) -> R {
    match pool {
        Some(p) => p.install(op),
        None => op(),
    }
}

/// DBSCAN++ accelerated by the LAF plugin.
pub struct LafDbscanPlusPlus<E: CardinalityEstimator> {
    /// Algorithm parameters.
    pub config: LafDbscanPlusPlusConfig,
    estimator: E,
}

impl<E: CardinalityEstimator> LafDbscanPlusPlus<E> {
    /// Build LAF-DBSCAN++ from a configuration and a trained estimator.
    pub fn new(config: LafDbscanPlusPlusConfig, estimator: E) -> Self {
        Self { config, estimator }
    }

    /// Borrow the estimator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }

    /// Estimate the predicted-core ratio `R_c` over a probe of the dataset
    /// and derive the sample fraction `p = δ + R_c` (clamped into (0, 1]).
    ///
    /// The probe rows are estimated with one batched
    /// [`CardinalityEstimator::estimate_batch`] call (bit-exact with the
    /// per-point loop this method used before).
    pub fn sample_fraction(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return self.config.delta.clamp(0.05, 1.0);
        }
        let cfg = &self.config;
        let probe = cfg.core_ratio_probe.max(1).min(data.len());
        let stride = (data.len() / probe).max(1);
        let threshold = cfg.laf.skip_threshold();
        let rows: Vec<&[f32]> = (0..data.len())
            .step_by(stride)
            .map(|i| data.row(i))
            .collect();
        // Inside the configured pool so an estimator that fans out internally
        // (e.g. the exact oracle's blocked scan) honors the threads knob.
        let estimates = cfg
            .laf
            .run_batched(|| self.estimator.estimate_batch(&rows, cfg.laf.eps));
        let predicted_core = estimates
            .iter()
            .filter(|est| !est.is_finite() || **est >= threshold)
            .count();
        let r_c = predicted_core as f64 / rows.len().max(1) as f64;
        (cfg.delta + r_c).clamp(0.05, 1.0)
    }

    /// Run the clustering and return the LAF bookkeeping counters.
    pub fn cluster_with_stats(&self, data: &Dataset) -> (Clustering, LafStats) {
        let start = Instant::now();
        let n = data.len();
        if n == 0 {
            return (Clustering::new(Vec::new()), LafStats::default());
        }
        let cfg = &self.config;
        let eps = cfg.laf.eps;
        let tau = cfg.laf.min_pts;
        let engine = build_engine(cfg.laf.engine, data, cfg.laf.metric, eps);
        let gate = CardEstGate::new(&self.estimator, &cfg.laf);
        let mut partial = PartialNeighborMap::new();
        let mut executed_queries = 0u64;

        // Sample subset with p = δ + R_c (reusing DBSCAN++'s sampler so the
        // subset matches the baseline's given the same fraction and seed).
        let fraction = self.sample_fraction(data);
        let sampler = DbscanPlusPlus::new(DbscanPlusPlusConfig {
            eps,
            min_pts: tau,
            sample_fraction: fraction,
            metric: cfg.laf.metric,
            engine: cfg.laf.engine,
            seed: cfg.seed,
        });
        let sample = sampler.sample_indices(n);

        // LAF: batch-predict the sampled points' cardinalities up front
        // (parallel, batched; see `LafDbscan::cluster_with_stats` for the
        // execution model). Only the sample is prescanned — estimating the
        // whole dataset would re-introduce the O(n) estimator cost that
        // sampling exists to avoid. Decisions are indexed by sample slot.
        // One pool serves both this prescan and the phase-3 fan-out.
        let pool = cfg.laf.thread_pool();
        let sample_rows: Vec<&[f32]> = sample.iter().map(|&s| data.row(s)).collect();
        let prescan = install_in(&pool, || gate.prescan_rows(&sample_rows));

        // Phase 1: gated core detection inside the sample.
        let mut core_points: Vec<usize> = Vec::new();
        let mut core_neighbors: Vec<Vec<u32>> = Vec::new();
        for (slot, &s) in sample.iter().enumerate() {
            if gate.decide(&prescan, slot) {
                partial.register_stop_point(s as u32);
                continue;
            }
            let neighbors = engine.range(data.row(s), eps);
            executed_queries += 1;
            partial.update(s as u32, &neighbors);
            if neighbors.len() >= tau {
                core_points.push(s);
                core_neighbors.push(neighbors);
            }
        }

        // Phase 2: grow clusters over the sampled core points.
        let mut labels = vec![UNDEFINED; n];
        let mut core_slot: Vec<Option<usize>> = vec![None; n];
        for (slot, &c) in core_points.iter().enumerate() {
            core_slot[c] = Some(slot);
        }
        let mut next_cluster: i64 = -1;
        for (slot, &c) in core_points.iter().enumerate() {
            if labels[c] != UNDEFINED {
                continue;
            }
            next_cluster += 1;
            labels[c] = next_cluster;
            let mut queue = vec![slot];
            while let Some(cur) = queue.pop() {
                for &nb in &core_neighbors[cur] {
                    let nb = nb as usize;
                    if let Some(nb_slot) = core_slot[nb] {
                        if labels[nb] == UNDEFINED {
                            labels[nb] = next_cluster;
                            queue.push(nb_slot);
                        }
                    }
                }
            }
        }

        // Phase 3: assign the remaining points to the closest core point
        // within ε, otherwise noise. Each point's assignment only reads the
        // (already final) core labels, so the points fan out in parallel and
        // the result is identical to the sequential loop.
        labels = install_in(&pool, || {
            use rayon::prelude::*;
            let labels = &labels;
            let core_points = &core_points;
            (0..n)
                .into_par_iter()
                .map(|p| {
                    if labels[p] != UNDEFINED {
                        return labels[p];
                    }
                    let row = data.row(p);
                    let mut best: Option<(f32, i64)> = None;
                    for &c in core_points {
                        let d = cfg.laf.metric.dist(row, data.row(c));
                        if d < eps {
                            match best {
                                Some((bd, _)) if bd <= d => {}
                                _ => best = Some((d, labels[c])),
                            }
                        }
                    }
                    best.map(|(_, l)| l).unwrap_or(NOISE)
                })
                .collect()
        });

        // Phase 4: post-processing merges clusters separated by false
        // negatives among the skipped sampled points (switchable only for
        // ablation studies).
        let report = if cfg.laf.post_processing {
            PostProcessor::new(tau).process(&mut labels, &partial)
        } else {
            Default::default()
        };

        let stats = LafStats {
            cardest_calls: gate.calls(),
            skipped_range_queries: gate.skips(),
            executed_range_queries: executed_queries,
            predicted_stop_points: partial.len() as u64,
            detected_false_negatives: report.detected_false_negatives,
            merged_clusters: report.merged_clusters,
            prescan_batches: prescan.batches,
            prescan_batch_size: prescan.batch_size,
            prescan_last_batch_size: prescan.last_batch_size,
        };

        let mut clustering = Clustering::new(labels);
        clustering.normalize_ids();
        clustering.elapsed = start.elapsed();
        clustering.range_queries = executed_queries;
        clustering.skipped_range_queries = stats.skipped_range_queries;
        clustering.distance_evaluations = engine.distance_evaluations();
        (clustering, stats)
    }
}

impl<E: CardinalityEstimator> Clusterer for LafDbscanPlusPlus<E> {
    fn cluster(&self, data: &Dataset) -> Clustering {
        self.cluster_with_stats(data).0
    }

    fn name(&self) -> &'static str {
        "LAF-DBSCAN++"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::{
        ConstantEstimator, ExactEstimator, MlpEstimator, NetConfig, TrainingSetBuilder,
    };
    use laf_clustering::Dbscan;
    use laf_metrics::adjusted_rand_index;
    use laf_synth::EmbeddingMixtureConfig;
    use laf_vector::Metric;

    fn data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 300,
            dim: 12,
            clusters: 5,
            spread: 0.05,
            noise_fraction: 0.2,
            seed: 131,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn sample_fraction_combines_delta_and_core_ratio() {
        let data = data();
        // Estimator that calls everything core: R_c = 1 → fraction clamps to 1.
        let all_core = LafDbscanPlusPlus::new(
            LafDbscanPlusPlusConfig::new(0.25, 4, 0.2),
            ConstantEstimator::new(f32::INFINITY),
        );
        assert_eq!(all_core.sample_fraction(&data), 1.0);
        // Estimator that calls nothing core: fraction = δ.
        let none_core = LafDbscanPlusPlus::new(
            LafDbscanPlusPlusConfig::new(0.25, 4, 0.2),
            ConstantEstimator::new(0.0),
        );
        assert!((none_core.sample_fraction(&data) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn oracle_estimator_matches_full_sample_dbscan_pp_quality() {
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let laf_pp = LafDbscanPlusPlus::new(
            LafDbscanPlusPlusConfig::new(0.25, 4, 0.3),
            ExactEstimator::new(&data, Metric::Cosine),
        );
        let (result, stats) = laf_pp.cluster_with_stats(&data);
        let ari = adjusted_rand_index(truth.labels(), result.labels());
        assert!(ari > 0.6, "ARI {ari}");
        // The oracle skips exactly the non-core sampled points.
        assert!(stats.skipped_range_queries > 0);
        assert!(stats.executed_range_queries > 0);
    }

    #[test]
    fn learned_estimator_is_faster_than_dbscan_pp_in_queries() {
        let data = data();
        let ts = TrainingSetBuilder {
            max_queries: Some(150),
            ..Default::default()
        }
        .build(&data, &data)
        .unwrap();
        let estimator = MlpEstimator::train(&ts, &NetConfig::tiny());
        let laf_pp = LafDbscanPlusPlus::new(LafDbscanPlusPlusConfig::new(0.25, 4, 0.2), estimator);
        let (result, stats) = laf_pp.cluster_with_stats(&data);
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let ari = adjusted_rand_index(truth.labels(), result.labels());
        assert!(ari > 0.4, "ARI {ari}");
        // Every gate decision either skipped or executed the range query.
        assert_eq!(
            stats.executed_range_queries + stats.skipped_range_queries,
            stats.cardest_calls
        );
    }

    #[test]
    fn empty_dataset() {
        let empty = Dataset::new(4).unwrap();
        let laf_pp = LafDbscanPlusPlus::new(
            LafDbscanPlusPlusConfig::default(),
            ConstantEstimator::new(1.0),
        );
        let (result, stats) = laf_pp.cluster_with_stats(&empty);
        assert!(result.is_empty());
        assert_eq!(stats, LafStats::default());
        assert_eq!(laf_pp.name(), "LAF-DBSCAN++");
    }

    #[test]
    fn zero_estimator_gives_all_noise() {
        let data = data();
        let laf_pp = LafDbscanPlusPlus::new(
            LafDbscanPlusPlusConfig::new(0.25, 4, 0.2),
            ConstantEstimator::new(0.0),
        );
        let (result, stats) = laf_pp.cluster_with_stats(&data);
        assert_eq!(result.n_noise(), data.len());
        assert_eq!(stats.executed_range_queries, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = data();
        let run = || {
            LafDbscanPlusPlus::new(
                LafDbscanPlusPlusConfig::new(0.25, 4, 0.3),
                ExactEstimator::new(&data, Metric::Cosine),
            )
            .cluster(&data)
        };
        assert_eq!(run().labels(), run().labels());
    }
}
