//! LAF configuration and run statistics.

use laf_index::EngineChoice;
use laf_vector::Metric;
use serde::{Deserialize, Serialize};

/// Parameters shared by the LAF-enhanced algorithms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LafConfig {
    /// Distance threshold ε.
    pub eps: f32,
    /// Minimum number of neighbors τ.
    pub min_pts: usize,
    /// Error factor α: the cardinality prediction is compared against `α·τ`.
    /// The paper tunes this per dataset (Table 1: 1.15–7.7 for LAF-DBSCAN)
    /// and fixes it to 1.0 for LAF-DBSCAN++.
    pub alpha: f32,
    /// Distance metric (the paper's method targets angular distances).
    pub metric: Metric,
    /// Range-query engine used for the queries that are not skipped.
    pub engine: EngineChoice,
    /// Whether the post-processing module runs after clustering. The paper's
    /// framework always enables it; the switch exists for the ablation
    /// benchmarks that quantify how much quality the module recovers.
    #[serde(default = "default_post_processing")]
    pub post_processing: bool,
    /// Number of worker threads for the batched phases (the gate prescan and
    /// any batched range kernels). `0` means "use all available cores". The
    /// BFS expansion of Algorithm 1 is inherently sequential and unaffected;
    /// cluster assignments are byte-identical for every thread count.
    #[serde(default)]
    pub threads: usize,
}

fn default_post_processing() -> bool {
    true
}

impl Default for LafConfig {
    fn default() -> Self {
        Self {
            eps: 0.5,
            min_pts: 3,
            alpha: 1.0,
            metric: Metric::Cosine,
            engine: EngineChoice::Linear,
            post_processing: true,
            threads: 0,
        }
    }
}

impl LafConfig {
    /// Convenience constructor.
    pub fn new(eps: f32, min_pts: usize, alpha: f32) -> Self {
        Self {
            eps,
            min_pts,
            alpha,
            ..Default::default()
        }
    }

    /// The skip threshold `α·τ` the estimator output is compared against.
    pub fn skip_threshold(&self) -> f32 {
        self.alpha * self.min_pts as f32
    }

    /// Thread pool honoring the [`LafConfig::threads`] knob, or `None` when
    /// pool construction fails (e.g. thread spawning denied) — callers
    /// degrade to the ambient pool instead of panicking. Built at most a
    /// couple of times per clustering run, which is negligible next to the
    /// run itself.
    pub(crate) fn thread_pool(&self) -> Option<rayon::ThreadPool> {
        rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .ok()
    }

    /// Run `op` inside the configured pool (see [`LafConfig::threads`]),
    /// falling back to the ambient pool when construction fails.
    pub(crate) fn run_batched<R>(&self, op: impl FnOnce() -> R) -> R {
        match self.thread_pool() {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }
}

/// Counters describing how much work LAF saved and how much repair the
/// post-processing performed. Attached to every LAF clustering run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LafStats {
    /// Number of cardinality-estimator invocations.
    pub cardest_calls: u64,
    /// Range queries skipped because the estimator predicted a stop point.
    pub skipped_range_queries: u64,
    /// Range queries actually executed.
    pub executed_range_queries: u64,
    /// Predicted stop points recorded in the partial-neighbor map.
    pub predicted_stop_points: u64,
    /// Detected false negatives (`|E(P)| ≥ τ`) found by post-processing.
    pub detected_false_negatives: u64,
    /// Number of cluster-merge operations the post-processing performed.
    pub merged_clusters: u64,
    /// Number of estimator batches issued by the gate prescan (0 when the
    /// run had no prescan, e.g. on an empty dataset).
    #[serde(default)]
    pub prescan_batches: u64,
    /// Size of every prescan batch except possibly the last: the prescanned
    /// row count capped at [`crate::gate::PRESCAN_BATCH`].
    #[serde(default)]
    pub prescan_batch_size: u64,
    /// Size of the final prescan batch actually fed to `estimate_batch`
    /// (smaller than `prescan_batch_size` when the row count does not divide
    /// evenly into full batches; 0 when the run had no prescan).
    #[serde(default)]
    pub prescan_last_batch_size: u64,
}

impl LafStats {
    /// Fraction of gate decisions that skipped the range query.
    pub fn skip_ratio(&self) -> f64 {
        if self.cardest_calls == 0 {
            0.0
        } else {
            self.skipped_range_queries as f64 / self.cardest_calls as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_threshold_is_alpha_times_tau() {
        let cfg = LafConfig::new(0.5, 5, 2.0);
        assert_eq!(cfg.skip_threshold(), 10.0);
        let default = LafConfig::default();
        assert_eq!(default.skip_threshold(), default.min_pts as f32);
    }

    #[test]
    fn stats_skip_ratio() {
        let mut stats = LafStats::default();
        assert_eq!(stats.skip_ratio(), 0.0);
        stats.cardest_calls = 10;
        stats.skipped_range_queries = 4;
        assert!((stats.skip_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = LafConfig::new(0.55, 5, 7.7);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: LafConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
