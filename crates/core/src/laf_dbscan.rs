//! LAF-DBSCAN (Algorithm 1 of the paper).
//!
//! The control flow below follows Algorithm 1 line by line: the black-text
//! lines are the original DBSCAN, the lines marked `LAF:` in comments are the
//! framework's insertions (cardinality-estimation gate, partial-neighbor
//! tracking and post-processing).

use crate::config::{LafConfig, LafStats};
use crate::gate::CardEstGate;
use crate::partial::PartialNeighborMap;
use crate::post::PostProcessor;
use laf_cardest::CardinalityEstimator;
use laf_clustering::{Clusterer, Clustering, NOISE, UNDEFINED};
use laf_index::{build_engine, RangeQueryEngine};
use laf_vector::Dataset;
use std::time::Instant;

/// DBSCAN accelerated by the LAF plugin.
///
/// Generic over the cardinality estimator so the same algorithm can run with
/// the paper's RMI, a single MLP, the traditional baselines, or the exact
/// oracle used in tests (`LAF-DBSCAN` with the oracle and α = 1 reproduces
/// plain DBSCAN exactly).
pub struct LafDbscan<E: CardinalityEstimator> {
    /// Shared LAF parameters (ε, τ, α, metric, engine).
    pub config: LafConfig,
    estimator: E,
}

impl<E: CardinalityEstimator> LafDbscan<E> {
    /// Build LAF-DBSCAN from a configuration and a trained estimator.
    pub fn new(config: LafConfig, estimator: E) -> Self {
        Self { config, estimator }
    }

    /// Borrow the estimator (e.g. to inspect prediction counters).
    pub fn estimator(&self) -> &E {
        &self.estimator
    }

    /// Run the clustering and also return the LAF bookkeeping counters.
    ///
    /// Execution model: the gate decisions for **all** points are computed
    /// up front by a parallel, batched prescan
    /// ([`CardEstGate::prescan`] — one `estimate_batch` call per chunk of
    /// points, chunks fanned out over the [`LafConfig::threads`] pool). The
    /// BFS expansion below then consumes the precomputed decisions through
    /// [`CardEstGate::decide`]. Because batched estimation is bit-exact with
    /// per-point estimation and the counters advance at consumption time,
    /// labels *and* statistics are byte-identical to the sequential
    /// point-at-a-time gating this method used before.
    pub fn cluster_with_stats(&self, data: &Dataset) -> (Clustering, LafStats) {
        let cfg = &self.config;
        let engine = build_engine(cfg.engine, data, cfg.metric, cfg.eps);
        self.cluster_with_stats_using(data, engine.as_ref())
    }

    /// [`LafDbscan::cluster_with_stats`] with a caller-supplied range-query
    /// engine over `data` — the entry point for serving layers that restore a
    /// persisted engine structure from a snapshot instead of rebuilding one
    /// per run (see [`crate::LafPipeline::engine`]).
    ///
    /// The engine's distance-evaluation counter is read at the end of the run
    /// and attached to the returned [`Clustering`]; pass a freshly built or
    /// freshly restored engine (or reset the counter) if per-run numbers
    /// matter.
    pub fn cluster_with_stats_using(
        &self,
        data: &Dataset,
        engine: &dyn RangeQueryEngine,
    ) -> (Clustering, LafStats) {
        let start = Instant::now();
        let n = data.len();
        if n == 0 {
            return (Clustering::new(Vec::new()), LafStats::default());
        }
        let cfg = &self.config;
        let gate = CardEstGate::new(&self.estimator, cfg);
        let tau = cfg.min_pts;
        let eps = cfg.eps;

        // LAF: batch-predict every point's cardinality before the main loop.
        let prescan = cfg.run_batched(|| gate.prescan(data));

        // Algorithm 1, lines 1–3.
        let mut labels = vec![UNDEFINED; n];
        let mut partial = PartialNeighborMap::new(); // LAF: the map E.
        let mut next_cluster: i64 = -1;
        let mut executed_queries = 0u64;

        // Line 4: for each point P in D.
        for p in 0..n {
            // Line 5.
            if labels[p] != UNDEFINED {
                continue;
            }
            // LAF, lines 6–9: skip the range query for predicted stop points.
            if gate.decide(&prescan, p) {
                labels[p] = NOISE;
                partial.register_stop_point(p as u32);
                continue;
            }
            // Line 10: the range query.
            let neighbors = engine.range(data.row(p), eps);
            executed_queries += 1;
            // LAF, line 11: UpdatePartialNeighbors.
            partial.update(p as u32, &neighbors);
            // Lines 12–14: double check with the true neighbor count.
            if neighbors.len() < tau {
                labels[p] = NOISE;
                continue;
            }
            // Lines 15–17.
            next_cluster += 1;
            labels[p] = next_cluster;
            let mut seeds: Vec<u32> = neighbors.into_iter().filter(|&q| q as usize != p).collect();
            // Lines 18–27: expand the cluster through the seed list.
            let mut cursor = 0usize;
            while cursor < seeds.len() {
                let q = seeds[cursor] as usize;
                cursor += 1;
                // Line 19: noise points become border points.
                if labels[q] == NOISE {
                    labels[q] = next_cluster;
                }
                // Line 20.
                if labels[q] != UNDEFINED {
                    continue;
                }
                // Line 21.
                labels[q] = next_cluster;
                // LAF, line 22: gate the expansion query too.
                if !gate.decide(&prescan, q) {
                    // Line 23.
                    let q_neighbors = engine.range(data.row(q), eps);
                    executed_queries += 1;
                    // LAF, line 24.
                    partial.update(q as u32, &q_neighbors);
                    // Line 25.
                    if q_neighbors.len() >= tau {
                        seeds.extend(q_neighbors);
                    }
                } else {
                    // LAF, lines 26–27.
                    partial.register_stop_point(q as u32);
                }
            }
        }

        // LAF, line 28: post-processing merges clusters separated by false
        // negatives (switchable only for ablation studies).
        let report = if cfg.post_processing {
            PostProcessor::new(tau).process(&mut labels, &partial)
        } else {
            Default::default()
        };

        let stats = LafStats {
            cardest_calls: gate.calls(),
            skipped_range_queries: gate.skips(),
            executed_range_queries: executed_queries,
            predicted_stop_points: partial.len() as u64,
            detected_false_negatives: report.detected_false_negatives,
            merged_clusters: report.merged_clusters,
            prescan_batches: prescan.batches,
            prescan_batch_size: prescan.batch_size,
            prescan_last_batch_size: prescan.last_batch_size,
        };

        let mut clustering = Clustering::new(labels);
        clustering.normalize_ids();
        clustering.elapsed = start.elapsed();
        clustering.range_queries = executed_queries;
        clustering.skipped_range_queries = stats.skipped_range_queries;
        clustering.distance_evaluations = engine.distance_evaluations();
        (clustering, stats)
    }
}

impl<E: CardinalityEstimator> Clusterer for LafDbscan<E> {
    fn cluster(&self, data: &Dataset) -> Clustering {
        self.cluster_with_stats(data).0
    }

    fn name(&self) -> &'static str {
        "LAF-DBSCAN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::{
        ConstantEstimator, ExactEstimator, MlpEstimator, NetConfig, TrainingSetBuilder,
    };
    use laf_clustering::Dbscan;
    use laf_metrics::{adjusted_mutual_information, adjusted_rand_index};
    use laf_synth::EmbeddingMixtureConfig;
    use laf_vector::Metric;

    fn data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 300,
            dim: 12,
            clusters: 5,
            spread: 0.05,
            noise_fraction: 0.2,
            seed: 111,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn oracle_estimator_with_alpha_one_reproduces_dbscan_exactly() {
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let laf = LafDbscan::new(
            LafConfig::new(0.25, 4, 1.0),
            ExactEstimator::new(&data, Metric::Cosine),
        );
        let (result, stats) = laf.cluster_with_stats(&data);
        assert_eq!(result.labels(), truth.labels());
        // The oracle never produces false negatives, so post-processing has
        // nothing to do.
        assert_eq!(stats.detected_false_negatives, 0);
        assert_eq!(stats.merged_clusters, 0);
        // With an exact oracle the skipped queries are exactly the queries
        // DBSCAN would have executed for stop points.
        assert!(stats.skipped_range_queries > 0);
        assert!(stats.executed_range_queries < truth.range_queries);
    }

    #[test]
    fn always_zero_estimator_marks_everything_noise() {
        let data = data();
        let laf = LafDbscan::new(LafConfig::new(0.25, 4, 1.0), ConstantEstimator::new(0.0));
        let (result, stats) = laf.cluster_with_stats(&data);
        assert_eq!(result.n_noise(), data.len());
        assert_eq!(stats.executed_range_queries, 0);
        assert_eq!(stats.skipped_range_queries, data.len() as u64);
        // Nobody executed a range query, so no partial neighbors were ever
        // recorded and post-processing cannot repair anything.
        assert_eq!(stats.detected_false_negatives, 0);
    }

    #[test]
    fn always_infinite_estimator_degrades_to_plain_dbscan() {
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let laf = LafDbscan::new(
            LafConfig::new(0.25, 4, 1.0),
            ConstantEstimator::new(f32::INFINITY),
        );
        let (result, stats) = laf.cluster_with_stats(&data);
        assert_eq!(result.labels(), truth.labels());
        assert_eq!(stats.skipped_range_queries, 0);
        assert_eq!(stats.executed_range_queries, truth.range_queries);
    }

    #[test]
    fn nan_estimator_is_harmless() {
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let laf = LafDbscan::new(
            LafConfig::new(0.25, 4, 1.0),
            ConstantEstimator::new(f32::NAN),
        );
        let result = laf.cluster(&data);
        assert_eq!(result.labels(), truth.labels());
    }

    #[test]
    fn learned_estimator_keeps_quality_high_and_skips_queries() {
        let data = data();
        let ts = TrainingSetBuilder {
            max_queries: Some(150),
            ..Default::default()
        }
        .build(&data, &data)
        .unwrap();
        let estimator = MlpEstimator::train(&ts, &NetConfig::tiny());
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let laf = LafDbscan::new(LafConfig::new(0.25, 4, 1.0), estimator);
        let (result, stats) = laf.cluster_with_stats(&data);
        let ari = adjusted_rand_index(truth.labels(), result.labels());
        let ami = adjusted_mutual_information(truth.labels(), result.labels());
        assert!(ari > 0.5, "ARI {ari}");
        assert!(ami > 0.5, "AMI {ami}");
        assert!(
            stats.executed_range_queries < truth.range_queries,
            "LAF must execute fewer range queries ({} vs {})",
            stats.executed_range_queries,
            truth.range_queries
        );
    }

    #[test]
    fn larger_alpha_skips_more_queries() {
        let data = data();
        let ts = TrainingSetBuilder {
            max_queries: Some(150),
            ..Default::default()
        }
        .build(&data, &data)
        .unwrap();
        let est_small = MlpEstimator::train(&ts, &NetConfig::tiny());
        let est_large = MlpEstimator::train(&ts, &NetConfig::tiny());
        let (_, stats_small) =
            LafDbscan::new(LafConfig::new(0.25, 4, 0.5), est_small).cluster_with_stats(&data);
        let (_, stats_large) =
            LafDbscan::new(LafConfig::new(0.25, 4, 4.0), est_large).cluster_with_stats(&data);
        assert!(
            stats_large.skipped_range_queries >= stats_small.skipped_range_queries,
            "alpha=4 skipped {} vs alpha=0.5 skipped {}",
            stats_large.skipped_range_queries,
            stats_small.skipped_range_queries
        );
    }

    #[test]
    fn post_processing_repairs_quality_of_a_pessimistic_estimator() {
        // An estimator that under-predicts by a constant factor produces
        // false negatives; the partial-neighbor map must recover most of the
        // lost structure compared to switching post-processing off
        // (simulated by τ = ∞ post threshold).
        struct Pessimistic<'a>(ExactEstimator<'a>);
        impl laf_cardest::CardinalityEstimator for Pessimistic<'_> {
            fn estimate(&self, query: &[f32], eps: f32) -> f32 {
                self.0.estimate(query, eps) * 0.4
            }
            fn name(&self) -> &'static str {
                "pessimistic"
            }
        }
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let laf = LafDbscan::new(
            LafConfig::new(0.25, 4, 1.0),
            Pessimistic(ExactEstimator::new(&data, Metric::Cosine)),
        );
        let (result, stats) = laf.cluster_with_stats(&data);
        assert!(stats.skipped_range_queries > 0);
        let ari = adjusted_rand_index(truth.labels(), result.labels());
        assert!(ari > 0.4, "ARI {ari} after post-processing");
    }

    #[test]
    fn post_processing_ablation_never_hurts_quality() {
        // Same pessimistic estimator as above; switching the post-processing
        // module off must not improve quality (usually it clearly degrades).
        struct Pessimistic<'a>(ExactEstimator<'a>);
        impl laf_cardest::CardinalityEstimator for Pessimistic<'_> {
            fn estimate(&self, query: &[f32], eps: f32) -> f32 {
                self.0.estimate(query, eps) * 0.4
            }
            fn name(&self) -> &'static str {
                "pessimistic"
            }
        }
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let with_post = LafDbscan::new(
            LafConfig::new(0.25, 4, 1.0),
            Pessimistic(ExactEstimator::new(&data, Metric::Cosine)),
        )
        .cluster(&data);
        let without_post = LafDbscan::new(
            LafConfig {
                post_processing: false,
                ..LafConfig::new(0.25, 4, 1.0)
            },
            Pessimistic(ExactEstimator::new(&data, Metric::Cosine)),
        )
        .cluster(&data);
        let ami_with = adjusted_mutual_information(truth.labels(), with_post.labels());
        let ami_without = adjusted_mutual_information(truth.labels(), without_post.labels());
        assert!(
            ami_with >= ami_without - 1e-9,
            "post-processing must not hurt: with={ami_with} without={ami_without}"
        );
    }

    #[test]
    fn empty_dataset() {
        let empty = Dataset::new(4).unwrap();
        let laf = LafDbscan::new(LafConfig::default(), ConstantEstimator::new(10.0));
        let (result, stats) = laf.cluster_with_stats(&empty);
        assert!(result.is_empty());
        assert_eq!(stats, LafStats::default());
        assert_eq!(laf.name(), "LAF-DBSCAN");
        assert_eq!(laf.estimator().name(), "constant");
    }
}
