//! The mutable serving plane: WAL-backed insert/delete over a frozen base.
//!
//! [`crate::LafPipeline`] is train-once/serve-frozen. [`MutablePipeline`]
//! layers mutability on top without giving up bit-exact reads, LSM-style:
//!
//! * the **base** — an immutable v4 snapshot (served via mmap) with its
//!   built range-query engine;
//! * a **delta segment** ([`laf_vector::DeltaSegment`]) of rows inserted
//!   since the base was built, scanned linearly alongside the base engine;
//! * a **tombstone bitmap** ([`laf_vector::TombstoneSet`]) masking deleted
//!   rows (base or delta) out of every answer;
//! * a **write-ahead log** ([`crate::wal`]) that records every mutation
//!   before it is applied, so reopening after a crash loses nothing;
//! * **compaction** ([`MutablePipeline::compact`]), which folds delta and
//!   tombstones into a fresh base snapshot and truncates the log.
//!
//! # Directory layout
//!
//! A mutable pipeline lives in a directory:
//!
//! ```text
//! dir/MANIFEST        JSON: current base file, base LSN, generation
//! dir/base-<g>.lafs   the generation-<g> base snapshot (format v4)
//! dir/wal.log         the write-ahead log (mutations past the base LSN)
//! ```
//!
//! The `MANIFEST` is the recovery authority and is replaced atomically
//! (write-temp + rename). Compaction orders its steps so every crash
//! window recovers exactly: write the new base, flip the manifest (its
//! `base_lsn` records which WAL prefix the base already folds in), then
//! truncate the log. Each step is made durable before the next runs — the
//! base file and manifest are fsynced, and the directory is fsynced after
//! each creation/rename — so the ordering holds across power loss, not just
//! process crashes. A crash before the flip replays the full log over the
//! old base; a crash after the flip but before the truncate skips the
//! already-folded prefix by LSN. Nothing is lost or applied twice.
//!
//! # Dense live ids and bit-exact reads
//!
//! All query answers and all delete targets use **dense live ids**: the
//! surviving rows numbered `0..len` in physical order (base rows first,
//! then delta rows). These are exactly the row ids of a from-scratch
//! pipeline built over the surviving rows, so for the exact engine
//! configurations `range` / `range_count` answers are **bit-identical** to
//! that from-scratch pipeline — before and after compaction — and `knn`
//! matches wherever the engine computes per-point distances the way a
//! linear scan does (everything except the cover tree's internal-Euclidean
//! reporting). The merge uses the same idioms as the sharded engine:
//! ascending-id concatenation for `range`, summation for counts, and a
//! NaN-safe [`laf_index::TopK`] merge for `knn`.

use crate::config::LafConfig;
use crate::pipeline::LafPipeline;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::wal::{Wal, WalOp, WalRecord};
use laf_index::{build_engine, LinearScan, Neighbor, RangeQueryEngine, TopK};
use laf_vector::fault;
use laf_vector::{Dataset, DeltaSegment, TombstoneSet};
use serde::{Deserialize, Serialize};
use std::cell::OnceCell;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Name of the manifest file inside a mutable pipeline directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Name of the write-ahead log file inside a mutable pipeline directory.
pub const WAL_FILE: &str = "wal.log";

/// fsync a directory so the creations/renames inside it are durable — a
/// file's own fsync does not cover its directory entry, and the compaction
/// crash ordering (base before manifest before truncate) only holds if each
/// step's entry reaches disk before the next step runs.
fn sync_dir(dir: &Path) -> Result<(), SnapshotError> {
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// The recovery authority of a mutable pipeline directory: which base
/// snapshot is current and which WAL prefix it already folds in.
///
/// Serialized as JSON and replaced atomically (write-temp + rename), so a
/// reader always sees either the old or the new manifest, never a torn one.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Manifest {
    /// File name (relative to the directory) of the current base snapshot.
    pub base: String,
    /// Every WAL record with `lsn <= base_lsn` is already folded into the
    /// base; replay applies only records past it.
    pub base_lsn: u64,
    /// Compaction generation, used to name the next base file.
    pub generation: u64,
}

impl Manifest {
    fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    fn read(dir: &Path) -> Result<Self, SnapshotError> {
        let text = std::fs::read_to_string(Self::path(dir))?;
        Ok(serde_json::from_str(&text)?)
    }

    /// Write atomically and durably: serialize to `MANIFEST.tmp`, fsync,
    /// rename over the live file, fsync the directory (without which a
    /// power loss could undo the rename even though the caller moved on to
    /// truncating the WAL).
    fn write(&self, dir: &Path) -> Result<(), SnapshotError> {
        let tmp = dir.join("MANIFEST.tmp");
        let json = serde_json::to_string_pretty(self)?;
        {
            let mut file = std::fs::File::create(&tmp)?;
            use std::io::Write;
            file.write_all(json.as_bytes())?;
            file.sync_data()?;
        }
        // Failpoint `manifest.rename`: crash after the temp manifest is
        // durable but before the atomic flip — the recovery authority still
        // points at the old base, so replay must cover the full log.
        if fault::fire("manifest.rename") {
            return Err(fault::injected("manifest.rename").into());
        }
        std::fs::rename(&tmp, Self::path(dir))?;
        sync_dir(dir)?;
        Ok(())
    }
}

/// A built engine over a point-in-time copy of the delta rows, cached by
/// [`MutablePipeline`] so repeated `knn` calls don't pay the engine build
/// (k-means tree, IVF training, …) per query.
///
/// Engines borrow the [`Dataset`] they index, so the holder owns a stable
/// copy of the delta's dataset alongside the engine — the same co-ownership
/// idiom as the pipeline-level `SharedEngine`. Field order is load-bearing:
/// `engine` holds pointers into `data`'s allocation and must drop first.
struct DeltaEngine {
    engine: Box<dyn RangeQueryEngine + 'static>,
    _data: Box<Dataset>,
}

impl DeltaEngine {
    fn build(delta: &DeltaSegment, config: &LafConfig) -> Self {
        // Snapshot the delta rows: the copy is immutable for the holder's
        // whole lifetime, unlike the live segment a later insert may grow
        // (and reallocate) under the cache.
        let data = Box::new(delta.dataset().clone());
        // SAFETY: `data` is boxed, so the `Dataset` the engine borrows has a
        // stable address for the holder's whole lifetime (moving the holder
        // moves the box pointer, not the pointee), its heap buffers are
        // owned by it, and nothing mutates it after this point. The field
        // order above drops the engine strictly before the dataset, so the
        // forged `'static` references are never dangling.
        let data_ref: &'static Dataset = unsafe { &*std::ptr::from_ref::<Dataset>(data.as_ref()) };
        let engine = build_engine(config.engine, data_ref, config.metric, config.eps);
        Self {
            engine,
            _data: data,
        }
    }
}

impl std::fmt::Debug for DeltaEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaEngine")
            .field("num_points", &self.engine.num_points())
            .finish_non_exhaustive()
    }
}

/// A serving pipeline that accepts inserts and deletes (see the
/// [module docs](self) for the design).
///
/// Reads take `&self`; mutations take `&mut self`. The struct is `Send`, so
/// a serving front can own it from a single dispatcher thread (the
/// `laf_serve` write routing does exactly that).
#[derive(Debug)]
pub struct MutablePipeline {
    dir: PathBuf,
    base: Arc<LafPipeline>,
    generation: u64,
    wal: Wal,
    delta: DeltaSegment,
    /// Covers the whole physical space: base rows `0..base_len`, then delta
    /// rows `base_len..base_len + delta.len()`.
    tombstones: TombstoneSet,
    /// LSN of the last applied mutation (0 when none since the base).
    last_lsn: u64,
    /// Lazily built knn engine over the current delta rows; reset whenever
    /// the delta changes (insert, compaction). Deletes only touch the
    /// tombstone bitmap — which is applied outside the engine — so they
    /// leave the cache valid.
    delta_engine: OnceCell<DeltaEngine>,
}

impl MutablePipeline {
    /// Initialize `dir` as a mutable pipeline directory with `pipeline` as
    /// its generation-0 base, then open it.
    ///
    /// # Errors
    /// Returns [`SnapshotError`] when `dir` already holds a manifest (it is
    /// already initialized — use [`MutablePipeline::open`]) or on I/O and
    /// encoding failures.
    pub fn create<P: AsRef<Path>>(dir: P, pipeline: &LafPipeline) -> Result<Self, SnapshotError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        if Manifest::path(dir).exists() {
            return Err(SnapshotError::Malformed(format!(
                "{} is already a mutable pipeline directory",
                dir.display()
            )));
        }
        let base_name = "base-0.lafs".to_string();
        pipeline.save(dir.join(&base_name))?;
        // A stale log from an aborted earlier initialization must not be
        // replayed over the fresh base.
        std::fs::remove_file(dir.join(WAL_FILE)).ok();
        // The base's directory entry must be durable before the manifest
        // points at it.
        sync_dir(dir)?;
        Manifest {
            base: base_name,
            base_lsn: 0,
            generation: 0,
        }
        .write(dir)?;
        Self::open(dir)
    }

    /// Open a mutable pipeline directory: read the manifest, mmap the base
    /// snapshot, replay the WAL tail (records past the manifest's
    /// `base_lsn`) into a fresh delta segment and tombstone set. A torn WAL
    /// tail is truncated away by [`Wal::open`]; every acknowledged write
    /// before it is recovered.
    ///
    /// # Errors
    /// Returns [`SnapshotError`] on a missing/corrupt manifest or base
    /// snapshot, WAL header damage, or replayed records inconsistent with
    /// the base (wrong row dimensionality, delete target out of range).
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, SnapshotError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = Manifest::read(&dir)?;
        let base = LafPipeline::load_mmap(dir.join(&manifest.base))?;
        let (mut wal, records) = Wal::open(dir.join(WAL_FILE))?;
        // A log truncated by a compaction reopens empty with its sequence
        // reset to 1, but the manifest still says LSNs <= base_lsn are
        // folded into the base. Resume numbering past that point, or new
        // writes would commit at already-folded LSNs and the next replay
        // would skip them (and a later compaction would regress base_lsn).
        wal.set_lsn_floor(manifest.base_lsn);
        let base_len = base.data().len();
        let dim = base.data().dim();
        let mut this = Self {
            dir,
            base: Arc::new(base),
            generation: manifest.generation,
            wal,
            delta: DeltaSegment::new(dim).map_err(SnapshotError::Vector)?,
            tombstones: TombstoneSet::new(base_len),
            last_lsn: manifest.base_lsn,
            delta_engine: OnceCell::new(),
        };
        for WalRecord { lsn, op } in records {
            if lsn <= manifest.base_lsn {
                continue; // already folded into the base by a compaction
            }
            this.apply(&op)?;
            this.last_lsn = lsn;
        }
        Ok(this)
    }

    /// Apply a mutation to the in-memory delta state. Used both by the live
    /// write path (after the WAL append) and by replay.
    fn apply(&mut self, op: &WalOp) -> Result<(), SnapshotError> {
        match op {
            WalOp::Insert(row) => {
                self.delta.push(row).map_err(SnapshotError::Vector)?;
                self.tombstones.grow_to(self.phys_len());
                // The cached delta engine indexes a stale copy of the rows.
                self.delta_engine = OnceCell::new();
            }
            WalOp::Delete(dense) => {
                let phys = self
                    .tombstones
                    .select_live(*dense as usize)
                    .ok_or_else(|| {
                        SnapshotError::Malformed(format!(
                            "delete target {dense} out of {} live rows",
                            self.len()
                        ))
                    })?;
                self.tombstones.mark(phys);
            }
        }
        Ok(())
    }

    /// Insert a row, returning the LSN the write committed at. The row's
    /// dense live id is [`MutablePipeline::len`]` - 1` until a preceding
    /// row is deleted.
    ///
    /// The write is logged before it is applied; call
    /// [`MutablePipeline::sync`] to force it to stable storage.
    ///
    /// # Errors
    /// Returns [`SnapshotError`] on a dimensionality mismatch or WAL I/O
    /// failure (a failed write is not applied).
    pub fn insert(&mut self, row: &[f32]) -> Result<u64, SnapshotError> {
        if row.len() != self.dim() {
            return Err(SnapshotError::Malformed(format!(
                "inserted row has {} dimensions, dataset has {}",
                row.len(),
                self.dim()
            )));
        }
        let lsn = self.wal.append(&WalOp::Insert(row.to_vec()))?;
        self.apply(&WalOp::Insert(row.to_vec()))
            .expect("validated insert cannot fail to apply");
        self.last_lsn = lsn;
        Ok(lsn)
    }

    /// Delete the row with dense live id `dense`, returning the commit LSN.
    /// Later rows shift down by one dense id, exactly as they would in a
    /// from-scratch dataset without the row.
    ///
    /// # Errors
    /// Returns [`SnapshotError`] when `dense >= self.len()` or on WAL I/O
    /// failure (a failed write is not applied).
    pub fn delete(&mut self, dense: usize) -> Result<u64, SnapshotError> {
        if dense >= self.len() {
            return Err(SnapshotError::Malformed(format!(
                "delete target {dense} out of {} live rows",
                self.len()
            )));
        }
        let lsn = self.wal.append(&WalOp::Delete(dense as u64))?;
        self.apply(&WalOp::Delete(dense as u64))
            .expect("validated delete cannot fail to apply");
        self.last_lsn = lsn;
        Ok(lsn)
    }

    /// Flush logged writes to stable storage (`fdatasync` on the WAL).
    ///
    /// # Errors
    /// Returns [`SnapshotError`] on I/O failure.
    pub fn sync(&self) -> Result<(), SnapshotError> {
        self.wal.sync()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.tombstones.live()
    }

    /// Whether no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.base.data().dim()
    }

    /// Rows in the delta segment (inserted since the current base).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Deleted rows masked by the tombstone bitmap.
    pub fn deleted(&self) -> usize {
        self.tombstones.deleted()
    }

    /// Mutations outstanding against the current base — the delta rows plus
    /// tombstones a compaction would fold in. Serving fronts use this as
    /// their compaction trigger.
    pub fn pending_ops(&self) -> usize {
        self.delta.len() + self.tombstones.deleted()
    }

    /// LSN of the last applied mutation (equals the manifest's `base_lsn`
    /// right after a compaction).
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn
    }

    /// Current compaction generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Byte length of the write-ahead log, i.e. the durability frontier:
    /// every operation whose frame ends at or before this offset survives
    /// a crash. Kill-point tests truncate copies of the log to offsets
    /// recorded from here.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// The directory this pipeline lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The frozen base pipeline (shared; replaced by
    /// [`MutablePipeline::compact`]).
    pub fn base(&self) -> &Arc<LafPipeline> {
        &self.base
    }

    fn base_len(&self) -> usize {
        self.base.data().len()
    }

    fn phys_len(&self) -> usize {
        self.base_len() + self.delta.len()
    }

    /// The row with dense live id `dense`.
    ///
    /// # Panics
    /// Panics when `dense >= self.len()`.
    pub fn row(&self, dense: usize) -> &[f32] {
        let phys = self
            .tombstones
            .select_live(dense)
            .expect("dense id in range");
        if phys < self.base_len() {
            self.base.data().row(phys)
        } else {
            self.delta.row(phys - self.base_len())
        }
    }

    /// Materialize the live rows, in dense order, as an owned dataset —
    /// exactly the dataset a from-scratch pipeline over the surviving rows
    /// would be built on (compaction serves from this).
    ///
    /// # Errors
    /// Returns [`SnapshotError`] on an allocation-layer failure.
    pub fn live_dataset(&self) -> Result<laf_vector::Dataset, SnapshotError> {
        let mut out = laf_vector::Dataset::with_capacity(self.dim(), self.len())
            .map_err(SnapshotError::Vector)?;
        let base_len = self.base_len();
        for phys in self.tombstones.iter_live() {
            let row = if phys < base_len {
                self.base.data().row(phys)
            } else {
                self.delta.row(phys - base_len)
            };
            out.push(row).map_err(SnapshotError::Vector)?;
        }
        Ok(out)
    }

    /// Linear-scan engine over the delta rows, built with the same metric
    /// and kernel defaults as the base engine's scan loops. Used for range
    /// queries, where membership (`dist < eps`) is engine-independent.
    fn delta_scan(&self) -> LinearScan<'_> {
        LinearScan::new(self.delta.dataset(), self.base.config().metric)
    }

    /// Delta engine of the **same kind** as the base engine, used for knn.
    /// Reported knn distances are a per-pair function of the engine kind
    /// (e.g. the grid and cover tree score through their internal Euclidean
    /// conversion rather than the linear-scan kernel), so scoring delta
    /// rows with a matching engine makes the merged (distance, id) multiset
    /// identical to a from-scratch engine's over the live rows.
    ///
    /// Built at most once per delta state: the [`DeltaEngine`] cache is
    /// reset whenever the delta changes, so back-to-back knn queries (the
    /// common serving shape) don't pay an engine build each.
    fn delta_knn_engine(&self) -> &dyn RangeQueryEngine {
        self.delta_engine
            .get_or_init(|| DeltaEngine::build(&self.delta, self.base.config()))
            .engine
            .as_ref()
    }

    /// ε-range query: dense live ids within `eps` of `query`, ascending —
    /// bit-identical to a from-scratch pipeline over the live rows (for
    /// exact engine configurations; see the [module docs](self)).
    pub fn range(&self, query: &[f32], eps: f32) -> Vec<u32> {
        let base_len = self.base_len();
        let mut out: Vec<u32> = Vec::new();
        for phys in self.base.engine().get().range(query, eps) {
            if let Some(dense) = self.tombstones.dense_of(phys as usize) {
                out.push(dense as u32);
            }
        }
        // Delta dense ids all exceed base dense ids (physical order is
        // preserved by densification), so appending keeps the list sorted.
        if !self.delta.is_empty() {
            for local in self.delta_scan().range(query, eps) {
                if let Some(dense) = self.tombstones.dense_of(base_len + local as usize) {
                    out.push(dense as u32);
                }
            }
        }
        out
    }

    /// ε-range count over the live rows.
    pub fn range_count(&self, query: &[f32], eps: f32) -> usize {
        if self.tombstones.deleted() == 0 {
            // No masking needed: counts add like the sharded merge.
            let base = self.base.engine().get().range_count(query, eps);
            let delta = if self.delta.is_empty() {
                0
            } else {
                self.delta_scan().range_count(query, eps)
            };
            return base + delta;
        }
        let base_len = self.base_len();
        let mut count = self
            .base
            .engine()
            .get()
            .range(query, eps)
            .into_iter()
            .filter(|&p| !self.tombstones.contains(p as usize))
            .count();
        if !self.delta.is_empty() {
            count += self
                .delta_scan()
                .range(query, eps)
                .into_iter()
                .filter(|&l| !self.tombstones.contains(base_len + l as usize))
                .count();
        }
        count
    }

    /// k-nearest-neighbor query over the live rows, results in the
    /// [`TopK`] order (distance, then dense id).
    ///
    /// The base engine is asked for `k + deleted` neighbors so that masked
    /// rows can never crowd live ones out of the answer; survivors from
    /// base and delta merge through the same [`TopK`] a from-scratch
    /// engine's scan would use.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let k = k.min(self.len());
        let over = k + self.tombstones.deleted();
        let base_len = self.base_len();
        let mut top = TopK::new(k);
        for n in self.base.engine().get().knn(query, over) {
            if let Some(dense) = self.tombstones.dense_of(n.index as usize) {
                top.push(Neighbor::new(dense as u32, n.dist));
            }
        }
        if !self.delta.is_empty() {
            for n in self.delta_knn_engine().knn(query, over) {
                if let Some(dense) = self.tombstones.dense_of(base_len + n.index as usize) {
                    top.push(Neighbor::new(dense as u32, n.dist));
                }
            }
        }
        top.into_sorted()
    }

    /// Learned cardinality estimate from the **base** estimator. The
    /// estimator is trained on the base dataset and is not updated by
    /// mutations; estimates drift with the delta until a compaction (which
    /// carries the estimator over unchanged — retraining is an offline
    /// decision, not a compaction side effect).
    pub fn estimate(&self, query: &[f32], eps: f32) -> f32 {
        self.base.estimate(query, eps)
    }

    /// Fold the delta segment and tombstones into a fresh base snapshot and
    /// truncate the WAL. Dense live ids are unchanged (survivors keep their
    /// physical order), so every answer after a compaction is bit-identical
    /// to the answer before it.
    ///
    /// Crash safety (see the [module docs](self)): the new base file is
    /// written and synced first, then the manifest flips atomically with
    /// `base_lsn` set to the last folded LSN, then the log is truncated. A
    /// reopen from any window in between recovers exactly the committed
    /// writes.
    ///
    /// No-op when nothing is pending.
    ///
    /// # Errors
    /// Returns [`SnapshotError`] on I/O or encoding failures; the pipeline
    /// state is unchanged on error.
    pub fn compact(&mut self) -> Result<(), SnapshotError> {
        if self.pending_ops() == 0 {
            return Ok(());
        }
        let cfg = self.base.config().clone();
        let data = self.live_dataset()?;
        let persisted = if cfg.engine.persistable() {
            build_engine(cfg.engine, &data, cfg.metric, cfg.eps).persist()
        } else {
            None
        };
        let snapshot = Snapshot {
            config: cfg,
            data,
            estimator: self.base.estimator().clone(),
            calibration: self.base.calibration().copied(),
            engine: persisted,
            shards: Vec::new(),
        };
        let generation = self.generation + 1;
        let base_name = format!("base-{generation}.lafs");
        let pipeline = LafPipeline::from_snapshot(snapshot);
        pipeline.save(self.dir.join(&base_name))?;
        // Crash ordering: the new base (synced to disk by `save`) and its
        // directory entry must be durable before the manifest can point at
        // it; `Manifest::write` then syncs its own rename before the WAL
        // truncation below makes the log unable to rebuild the delta.
        //
        // Failpoint `compact.dir_fsync`: crash between writing the new base
        // and making its directory entry durable — the manifest still names
        // the old base and the stray `base-<g+1>.lafs` must be tolerated.
        if fault::fire("compact.dir_fsync") {
            return Err(fault::injected("compact.dir_fsync").into());
        }
        sync_dir(&self.dir)?;
        // Reload the new base through the same mmap path `open` uses — so a
        // compacted pipeline serves exactly like a reopened one — and do it
        // *before* the manifest flips: a reload failure then aborts the
        // compaction with the directory and this handle both still on the
        // old generation (the stray next-generation base file is tolerated
        // and overwritten by a retry). Reloading after the flip could
        // strand the handle behind the on-disk manifest — its delta would
        // still hold folded rows, and acknowledged writes after the
        // failure would replay incorrectly on the next open.
        let base = LafPipeline::load_mmap(self.dir.join(&base_name))?;
        let delta = DeltaSegment::new(base.data().dim()).map_err(SnapshotError::Vector)?;
        Manifest {
            base: base_name,
            base_lsn: self.last_lsn,
            generation,
        }
        .write(&self.dir)?;
        // The flip is durable: commit the in-memory generation before the
        // WAL truncation, so even a truncation failure leaves this handle
        // consistent with the manifest (stale log records at or below
        // `base_lsn` are skipped by replay regardless).
        let old_base = format!("base-{}.lafs", self.generation);
        self.base = Arc::new(base);
        self.generation = generation;
        self.delta = delta;
        self.tombstones = TombstoneSet::new(self.base_len());
        self.delta_engine = OnceCell::new();
        self.wal.truncate()?;
        std::fs::remove_file(self.dir.join(old_base)).ok();
        Ok(())
    }
}
