//! Train-once / serve-many pipeline over the snapshot boundary.
//!
//! [`LafPipeline`] packages a [`LafConfig`], the indexed [`Dataset`] and a
//! trained [`MlpEstimator`] behind one handle with two ways in:
//!
//! * **Cold start** — [`LafPipelineBuilder::train`] builds the training set,
//!   fits the estimator and (optionally, via
//!   [`LafPipelineBuilder::train_and_save`]) persists a [`Snapshot`], paying
//!   the full offline training cost once;
//! * **Warm start** — [`LafPipeline::load`] restores a snapshot and is ready
//!   to serve immediately. With a format-v2 snapshot the **built** range-query
//!   engine (grid cells, k-means tree nodes, IVF posting lists — see
//!   [`laf_index::persist`]) is restored directly, skipping the construction
//!   cost; a v1 snapshot (or a non-persistable engine such as the cover tree)
//!   falls back to rebuilding from the restored [`laf_index::EngineChoice`].
//!
//! Because the snapshot stores the estimator's raw weight bits and the
//! restored engine structure answers queries identically to the one built at
//! training time, a warm pipeline is **bit-exact** with the process that
//! trained it: per-point estimates, gate decisions, cluster labels and
//! [`LafStats`] are byte-identical between the cold and warm paths.

use crate::config::{LafConfig, LafStats};
use crate::laf_dbscan::LafDbscan;
use crate::snapshot::{Snapshot, SnapshotError, SnapshotShard};
use laf_cardest::{
    CardinalityEstimator, EstimatorCalibrator, MlpEstimator, NetConfig, QErrorReport,
    TrainingSetBuilder,
};
use laf_clustering::Clustering;
use laf_index::{build_engine, restore_engine, PersistedEngine, RangeQueryEngine, ShardedEngine};
use laf_vector::{Dataset, ShardMap, VectorError};
use std::fmt;
use std::ops::Deref;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Number of calibration queries sampled when
/// [`LafPipelineBuilder::calibrate`] is enabled.
const CALIBRATION_QUERIES: usize = 256;

/// Builder for the **cold** (training) path of a [`LafPipeline`].
#[derive(Debug, Clone)]
pub struct LafPipelineBuilder {
    config: LafConfig,
    net: NetConfig,
    training: TrainingSetBuilder,
    calibrate: bool,
    shards: usize,
}

impl LafPipelineBuilder {
    /// Start a builder for the given clustering configuration. The training
    /// set is counted under the config's metric by default.
    pub fn new(config: LafConfig) -> Self {
        let training = TrainingSetBuilder {
            metric: config.metric,
            ..TrainingSetBuilder::default()
        };
        Self {
            config,
            net: NetConfig::small(),
            training,
            calibrate: false,
            shards: 1,
        }
    }

    /// Network architecture / optimizer hyper-parameters (default
    /// [`NetConfig::small`]).
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Training-set construction parameters (threshold grid, query cap,
    /// seed). The builder's `metric` field is ignored:
    /// [`LafPipelineBuilder::train`] always counts cardinalities under the
    /// [`LafConfig`]'s metric, because an estimator trained under a different
    /// metric than the gate queries would be systematically wrong.
    pub fn training(mut self, training: TrainingSetBuilder) -> Self {
        self.training = training;
        self
    }

    /// Also compute a q-error calibration report over a sample of the
    /// training data and carry it in the pipeline (and its snapshots) as a
    /// serving-time diagnostic. Off by default: calibration runs exact range
    /// counts, which is measurable on large datasets.
    pub fn calibrate(mut self, on: bool) -> Self {
        self.calibrate = on;
        self
    }

    /// Split the dataset into `n` shards (default 1 — unsharded).
    ///
    /// With two or more shards the trained snapshot carries one dataset
    /// slice and, for persistable engine choices, one built engine structure
    /// *per shard* (snapshot format v4), and every warm start serves queries
    /// through a [`laf_index::ShardedEngine`] that fans out across the
    /// shards in parallel and merges the answers bit-identically to the
    /// unsharded path — labels, stats and knn orderings included. Shard
    /// counts larger than the dataset are clamped; `0` behaves like `1`.
    /// The estimator and its training are unaffected: cardinality estimates
    /// are a property of the whole dataset, not of its layout.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// **Cold start**: fit the estimator on `data` and assemble the pipeline.
    ///
    /// # Errors
    /// Propagates training-set construction failures (empty dataset, empty
    /// threshold grid) as [`SnapshotError::Vector`].
    pub fn train(self, data: Dataset) -> Result<LafPipeline, SnapshotError> {
        // The estimator must predict cardinalities under the metric the gate
        // will query with, whatever the supplied training builder says — a
        // `..Default::default()` override must not silently flip the metric
        // back to cosine under a euclidean config.
        let training_builder = TrainingSetBuilder {
            metric: self.config.metric,
            ..self.training
        };
        let training = training_builder.build(&data, &data)?;
        let estimator = MlpEstimator::train(&training, &self.net);
        let calibration = if self.calibrate {
            use rand::SeedableRng;
            // Distinct stream from the training-query sampler (which seeds
            // `StdRng` from the seed directly): calibrating on the exact
            // query set the network was fitted to would overstate serving
            // accuracy.
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(training_builder.seed ^ 0xCA11_B8A7_E5EE_D000);
            let (queries, _) = data.sample(CALIBRATION_QUERIES, &mut rng);
            Some(EstimatorCalibrator::new(&data, self.config.metric).q_error(
                &estimator,
                &queries,
                &training.thresholds,
            ))
        } else {
            None
        };
        // Persist the built engine structure(s) so warm starts (and this
        // pipeline's own clustering runs) skip the construction cost. Engines
        // with nothing worth saving are skipped up front instead of being
        // built purely to discover `persist()` returns `None`.
        let shard_map = if self.shards >= 2 {
            let map = ShardMap::even_split(data.len(), self.shards);
            // A dataset smaller than two rows degenerates to one shard;
            // treat that as unsharded rather than writing a trivial manifest.
            (map.n_shards() >= 2).then_some(map)
        } else {
            None
        };
        let build_persisted = |slice: &Dataset| {
            if self.config.engine.persistable() {
                build_engine(
                    self.config.engine,
                    slice,
                    self.config.metric,
                    self.config.eps,
                )
                .persist()
            } else {
                None
            }
        };
        let (data, shards, engine) = match shard_map {
            Some(map) => {
                // Shard slices are zero-copy views into one shared
                // allocation, so sharding costs no extra dataset memory.
                let data = data.into_shared();
                let shards = (0..map.n_shards())
                    .map(|s| {
                        let slice = data.slice_rows(map.start(s), map.shard_len(s))?;
                        let engine = build_persisted(&slice);
                        Ok(SnapshotShard {
                            data: slice,
                            engine,
                        })
                    })
                    .collect::<Result<Vec<_>, VectorError>>()?;
                (data, shards, None)
            }
            None => {
                let engine = build_persisted(&data);
                (data, Vec::new(), engine)
            }
        };
        Ok(LafPipeline::from_snapshot(Snapshot {
            config: self.config,
            data,
            estimator,
            calibration,
            engine,
            shards,
        }))
    }

    /// Cold start plus persistence: train on `data`, save the snapshot to
    /// `path`, return the live pipeline.
    pub fn train_and_save<P: AsRef<Path>>(
        self,
        data: Dataset,
        path: P,
    ) -> Result<LafPipeline, SnapshotError> {
        let pipeline = self.train(data)?;
        pipeline.save(path)?;
        Ok(pipeline)
    }
}

/// A range-query engine shared across threads, co-owned with the snapshot
/// it indexes.
///
/// Engines borrow the [`Dataset`] they index, which would normally tie their
/// lifetime to a `&LafPipeline` borrow and force every serving call to
/// rebuild (or re-restore) the structure. `SharedEngine` instead co-owns the
/// pipeline's `Arc<Snapshot>` alongside the engine built over it, so the
/// handle is `'static`, [`Clone`] is a reference-count bump, and one built
/// engine can serve concurrent callers for as long as any handle lives —
/// exactly what the `laf_serve` dispatcher and repeated
/// [`LafPipeline::cluster_with_stats`] calls need.
#[derive(Clone)]
pub struct SharedEngine {
    inner: Arc<EngineHolder>,
}

/// Owns the engine together with the snapshot whose dataset it borrows.
///
/// Field order is load-bearing: struct fields drop in declaration order, so
/// `engine` (which holds pointers into `_snapshot`'s dataset) is destroyed
/// strictly before the snapshot it references.
struct EngineHolder {
    engine: Box<dyn RangeQueryEngine + 'static>,
    _snapshot: Arc<Snapshot>,
}

impl SharedEngine {
    /// Build (or restore) the engine for `snapshot`, co-owning the snapshot.
    fn new(snapshot: Arc<Snapshot>) -> Self {
        // SAFETY: `data` — and every shard's dataset below — lives inside
        // the `Arc<Snapshot>` heap allocation (the shard `Vec`'s buffer is
        // owned by it), whose addresses are stable for the allocation's
        // whole lifetime and whose contents are never mutated after
        // construction (`Snapshot` has no interior mutability in its
        // datasets). The holder below keeps that allocation alive for at
        // least as long as the engine, and the field order guarantees the
        // engine drops first, so the forged `'static` references are never
        // dangling while reachable.
        let data: &'static Dataset = unsafe { &*std::ptr::addr_of!(snapshot.data) };
        let engine: Box<dyn RangeQueryEngine + 'static> = 'build: {
            if !snapshot.shards.is_empty() {
                let cfg = &snapshot.config;
                let mut engines: Vec<Box<dyn RangeQueryEngine + 'static>> =
                    Vec::with_capacity(snapshot.shards.len());
                let mut lens: Vec<usize> = Vec::with_capacity(snapshot.shards.len());
                for shard in &snapshot.shards {
                    // SAFETY: see above — the shard lives in the Arc'd
                    // snapshot's shard buffer, which is never mutated.
                    let shard_data: &'static Dataset = unsafe { &*std::ptr::addr_of!(shard.data) };
                    let shard_engine = 'shard: {
                        if let Some(persisted) = &shard.engine {
                            if let Ok(engine) = restore_engine(persisted, shard_data) {
                                break 'shard engine;
                            }
                        }
                        build_engine(cfg.engine, shard_data, cfg.metric, cfg.eps)
                    };
                    lens.push(shard_data.len());
                    engines.push(shard_engine);
                }
                // An inconsistent hand-assembled shard layout (`Snapshot`
                // has public fields) degrades to one engine over the full
                // dataset rather than panicking mid-serve.
                if let Ok(map) = ShardMap::from_lens(&lens) {
                    if map.total_rows() == data.len() {
                        if let Ok(sharded) = ShardedEngine::new(engines, map) {
                            break 'build Box::new(sharded);
                        }
                    }
                }
            }
            if let Some(persisted) = &snapshot.engine {
                // restore_engine re-validates the structure even though
                // snapshot decoding already did: `Snapshot` has public fields
                // and `from_snapshot` accepts hand-assembled values, so this
                // path cannot assume a decode-validated structure. An
                // inconsistent in-process assembly degrades to the rebuild
                // path rather than panicking mid-serve.
                if let Ok(engine) = restore_engine(persisted, data) {
                    break 'build engine;
                }
            }
            let cfg = &snapshot.config;
            build_engine(cfg.engine, data, cfg.metric, cfg.eps)
        };
        Self {
            inner: Arc::new(EngineHolder {
                engine,
                _snapshot: snapshot,
            }),
        }
    }

    /// The engine itself. [`Deref`] makes this implicit at call sites; the
    /// explicit form is handy when a `&dyn RangeQueryEngine` is needed.
    pub fn get(&self) -> &dyn RangeQueryEngine {
        self.inner.engine.as_ref()
    }

    /// Whether two handles share one underlying engine build.
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }
}

impl Deref for SharedEngine {
    type Target = dyn RangeQueryEngine;

    fn deref(&self) -> &Self::Target {
        self.inner.engine.as_ref()
    }
}

impl fmt::Debug for SharedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedEngine")
            .field("num_points", &self.get().num_points())
            .finish_non_exhaustive()
    }
}

/// A trained, servable LAF clustering pipeline (see the
/// [module documentation](self)).
///
/// The snapshot is held behind an [`Arc`] and the built engine is cached in
/// a [`OnceLock`], so the pipeline is cheaply shareable: wrap it in an
/// `Arc<LafPipeline>`, fan it out to any number of threads, and every
/// serving call after the first reuses one engine build.
#[derive(Debug)]
pub struct LafPipeline {
    snapshot: Arc<Snapshot>,
    engine_cache: OnceLock<SharedEngine>,
}

impl LafPipeline {
    /// Builder for the cold (training) path.
    pub fn builder(config: LafConfig) -> LafPipelineBuilder {
        LafPipelineBuilder::new(config)
    }

    /// Assemble a pipeline from already-constructed parts (e.g. an estimator
    /// trained under a custom regime). No engine structure is persisted;
    /// [`LafPipeline::engine`] rebuilds from the config until the pipeline is
    /// saved and reloaded through the cold path.
    pub fn from_parts(config: LafConfig, data: Dataset, estimator: MlpEstimator) -> Self {
        Self::from_snapshot(Snapshot {
            config,
            data,
            estimator,
            calibration: None,
            engine: None,
            shards: Vec::new(),
        })
    }

    /// Wrap a decoded [`Snapshot`].
    pub fn from_snapshot(snapshot: Snapshot) -> Self {
        Self {
            snapshot: Arc::new(snapshot),
            engine_cache: OnceLock::new(),
        }
    }

    /// **Warm start**: restore a pipeline from a snapshot file and be ready
    /// to serve without retraining. The dataset is copied into an owned
    /// buffer; see [`LafPipeline::load_mmap`] for the zero-copy variant.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        Ok(Self::from_snapshot(Snapshot::load(path)?))
    }

    /// **Zero-copy warm start**: memory-map the snapshot and serve the
    /// dataset in place.
    ///
    /// Identical results to [`LafPipeline::load`] — every checksum is still
    /// verified once against the mapping — but for a format-v3 snapshot the
    /// dataset section is *not* copied into a fresh `Vec<f32>`: the pipeline
    /// borrows it from the kernel mapping ([`laf_vector::mapped`]), so warm
    /// start pays O(index-restore) instead of O(dataset) allocation+copy
    /// work, needs only read access to the file, and every serving process
    /// mapping the same snapshot shares one set of page-cache pages. Older
    /// snapshot versions (and misaligned hand-built files or big-endian
    /// hosts) transparently fall back to the copying path.
    pub fn load_mmap<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        Ok(Self::from_snapshot(Snapshot::open_mmap(path)?))
    }

    /// Warm start that *degrades* instead of failing on corruption in a
    /// derived snapshot section: a corrupt engine section is rebuilt from
    /// the dataset (answers byte-identical to a clean load), a corrupt
    /// estimator serves gate-off exact-only, a corrupt calibration summary
    /// is dropped. The [`crate::DegradedLoad`] report lists every
    /// substitution; structural corruption (config, dataset, shard layout)
    /// still fails. See [`crate::snapshot::Snapshot::decode_degraded`].
    pub fn load_degraded<P: AsRef<Path>>(
        path: P,
    ) -> Result<(Self, crate::DegradedLoad), SnapshotError> {
        let (snapshot, report) = Snapshot::load_degraded(path)?;
        Ok((Self::from_snapshot(snapshot), report))
    }

    /// Zero-copy twin of [`LafPipeline::load_degraded`].
    pub fn load_mmap_degraded<P: AsRef<Path>>(
        path: P,
    ) -> Result<(Self, crate::DegradedLoad), SnapshotError> {
        let (snapshot, report) = Snapshot::open_mmap_degraded(path)?;
        Ok((Self::from_snapshot(snapshot), report))
    }

    /// Restore a pipeline from in-memory snapshot bytes.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Ok(Self::from_snapshot(Snapshot::decode(bytes)?))
    }

    /// Persist the pipeline as a versioned binary snapshot.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        self.snapshot.save(path)
    }

    /// Encode the pipeline into in-memory snapshot bytes.
    pub fn to_snapshot_bytes(&self) -> Result<bytes::Bytes, SnapshotError> {
        self.snapshot.encode()
    }

    /// Consume the pipeline, releasing its snapshot parts.
    ///
    /// Cheap (a move) unless a [`SharedEngine`] handle from
    /// [`LafPipeline::engine`] is still alive elsewhere, in which case the
    /// snapshot is still co-owned and must be cloned out.
    pub fn into_snapshot(self) -> Snapshot {
        // Dropping the cache first releases the engine's co-ownership, which
        // is what makes the `try_unwrap` fast path the common case.
        drop(self.engine_cache);
        Arc::try_unwrap(self.snapshot).unwrap_or_else(|shared| (*shared).clone())
    }

    /// The pipeline's snapshot, shared. Clones are reference-count bumps;
    /// the serving layer uses this to keep old epochs alive while they
    /// drain.
    pub fn snapshot_arc(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot)
    }

    /// The clustering configuration (including the engine choice).
    pub fn config(&self) -> &LafConfig {
        &self.snapshot.config
    }

    /// The indexed dataset.
    pub fn data(&self) -> &Dataset {
        &self.snapshot.data
    }

    /// The trained estimator.
    pub fn estimator(&self) -> &MlpEstimator {
        &self.snapshot.estimator
    }

    /// Calibration summary captured at training time, if any.
    pub fn calibration(&self) -> Option<&QErrorReport> {
        self.snapshot.calibration.as_ref()
    }

    /// The persisted engine structure carried by this pipeline's snapshot,
    /// if any (`None` for v1 snapshots, non-persistable engines, and
    /// [`LafPipeline::from_parts`] pipelines).
    pub fn persisted_engine(&self) -> Option<&PersistedEngine> {
        self.snapshot.engine.as_ref()
    }

    /// The range-query engine over the restored dataset. When the snapshot
    /// carries a [persisted structure](LafPipeline::persisted_engine) it is
    /// restored directly — no grid bucketing, k-means construction or IVF
    /// training — otherwise the engine is rebuilt from the restored
    /// configuration (the v1 fallback path).
    ///
    /// The build happens **once per pipeline**: the engine is cached and
    /// every subsequent call (from any thread) returns a handle to the same
    /// underlying structure. The handle co-owns the snapshot, so it may
    /// outlive the pipeline — the serving layer relies on this to drain
    /// in-flight batches on an old epoch after a hot-reload swap.
    pub fn engine(&self) -> SharedEngine {
        self.engine_cache
            .get_or_init(|| SharedEngine::new(Arc::clone(&self.snapshot)))
            .clone()
    }

    /// Predicted cardinality of `query` at radius `eps` (serving-plane entry
    /// point for callers that gate their own queries).
    pub fn estimate(&self, query: &[f32], eps: f32) -> f32 {
        self.snapshot.estimator.estimate(query, eps)
    }

    /// Batched [`LafPipeline::estimate`], bit-exact with the per-query form.
    pub fn estimate_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<f32> {
        self.snapshot.estimator.estimate_batch(queries, eps)
    }

    /// Run LAF-DBSCAN over the pipeline's dataset.
    pub fn cluster(&self) -> Clustering {
        self.cluster_with_stats().0
    }

    /// Run LAF-DBSCAN over the pipeline's dataset, returning the LAF
    /// bookkeeping counters alongside the clustering. Range queries go
    /// through [`LafPipeline::engine`], so a pipeline restored from a v2
    /// snapshot serves its first clustering without rebuilding the engine.
    pub fn cluster_with_stats(&self) -> (Clustering, LafStats) {
        let engine = self.engine();
        LafDbscan::new(self.snapshot.config.clone(), &self.snapshot.estimator)
            .cluster_with_stats_using(&self.snapshot.data, engine.get())
    }

    /// Run LAF-DBSCAN with this pipeline's estimator over a **different**
    /// dataset of the same dimensionality (e.g. the latest batch of
    /// embeddings in a serve loop).
    ///
    /// Deliberately *not* a [`laf_clustering::Clusterer`] impl: the trait's
    /// one-arg `cluster` would be shadowed by the inherent zero-arg
    /// [`LafPipeline::cluster`] and become uncallable through method syntax.
    pub fn cluster_dataset(&self, data: &Dataset) -> (Clustering, LafStats) {
        LafDbscan::new(self.snapshot.config.clone(), &self.snapshot.estimator)
            .cluster_with_stats(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_index::EngineChoice;
    use laf_synth::EmbeddingMixtureConfig;

    fn data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 220,
            dim: 10,
            clusters: 4,
            noise_fraction: 0.2,
            seed: 41,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    fn builder() -> LafPipelineBuilder {
        LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(100),
                ..Default::default()
            })
    }

    #[test]
    fn warm_pipeline_is_bit_exact_with_the_cold_one() {
        let dir = std::env::temp_dir().join("laf_core_pipeline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.lafs");

        let cold = builder().train_and_save(data(), &path).unwrap();
        let warm = LafPipeline::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(warm.config(), cold.config());
        assert_eq!(warm.data(), cold.data());

        let (cold_clustering, cold_stats) = cold.cluster_with_stats();
        let (warm_clustering, warm_stats) = warm.cluster_with_stats();
        assert_eq!(cold_clustering.labels(), warm_clustering.labels());
        assert_eq!(cold_stats, warm_stats);

        let rows: Vec<&[f32]> = cold.data().rows().collect();
        let cold_estimates = cold.estimate_batch(&rows, cold.config().eps);
        let warm_estimates = warm.estimate_batch(&rows, warm.config().eps);
        for (i, (a, b)) in cold_estimates.iter().zip(&warm_estimates).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "estimate {i} differs");
        }
    }

    #[test]
    fn corrupt_engine_section_loads_degraded_with_identical_labels() {
        // The acceptance bar for degraded loads: flipping a bit inside the
        // persisted engine section must not fail the warm start — the
        // engine is rebuilt from the (intact) dataset, and every cluster
        // label is byte-identical to a clean load's.
        let dir = std::env::temp_dir().join("laf_core_pipeline_degraded_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("degraded_{}.lafs", std::process::id()));

        let mut config = LafConfig::new(0.3, 4, 1.0);
        config.engine = EngineChoice::Grid { cell_side: 0.5 };
        let cold = LafPipeline::builder(config)
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(100),
                ..Default::default()
            })
            .train_and_save(data(), &path)
            .unwrap();
        assert!(cold.persisted_engine().is_some(), "grid engines persist");

        // Flip one bit in the middle of the engine section's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let header_len = 12 + count * 24;
        let mut flipped = false;
        for entry in 0..count {
            let at = 12 + entry * 24;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            if id != crate::snapshot::section_id::ENGINE {
                continue;
            }
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            bytes[header_len + offset + len / 2] ^= 0x01;
            flipped = true;
        }
        assert!(flipped, "engine section present in the file");
        std::fs::write(&path, &bytes).unwrap();

        assert!(LafPipeline::load(&path).is_err(), "strict load must reject");
        for degraded_load in [LafPipeline::load_degraded, LafPipeline::load_mmap_degraded] {
            let (warm, report) = degraded_load(&path).unwrap();
            assert_eq!(report.sections, vec![crate::DegradedSection::Engine]);
            assert!(warm.persisted_engine().is_none());
            let (cold_clustering, _) = cold.cluster_with_stats();
            let (warm_clustering, _) = warm.cluster_with_stats();
            assert_eq!(
                cold_clustering.labels(),
                warm_clustering.labels(),
                "degraded rebuild must produce byte-identical labels"
            );
            for i in (0..cold.data().len()).step_by(23) {
                assert_eq!(
                    cold.engine().get().range(cold.data().row(i), 0.3),
                    warm.engine().get().range(warm.data().row(i), 0.3),
                    "row {i} range answers"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_warm_start_is_zero_copy_and_bit_exact() {
        let dir = std::env::temp_dir().join("laf_core_pipeline_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("mmap_{}.lafs", std::process::id()));

        let config = LafConfig {
            engine: EngineChoice::KMeansTree {
                branching: 4,
                leaf_ratio: 0.6,
            },
            ..LafConfig::new(0.3, 4, 1.0)
        };
        let cold = LafPipeline::builder(config)
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(60),
                ..Default::default()
            })
            .train_and_save(data(), &path)
            .unwrap();

        let warm = LafPipeline::load_mmap(&path).unwrap();
        assert!(
            cfg!(target_endian = "big") || warm.data().is_mapped(),
            "v3 snapshot must serve the dataset from the mapping"
        );
        assert!(
            warm.persisted_engine().is_some(),
            "mapped load must still restore the persisted engine"
        );
        assert_eq!(warm.data(), cold.data());

        let (cold_clustering, cold_stats) = cold.cluster_with_stats();
        let (warm_clustering, warm_stats) = warm.cluster_with_stats();
        assert_eq!(cold_clustering.labels(), warm_clustering.labels());
        assert_eq!(cold_stats, warm_stats);

        // The mapped pipeline needs only read access; dropping it unmaps.
        drop(warm);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_bytes_round_trip_in_memory() {
        let cold = builder().train(data()).unwrap();
        let bytes = cold.to_snapshot_bytes().unwrap();
        let warm = LafPipeline::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(
            cold.cluster().labels(),
            warm.cluster().labels(),
            "in-memory snapshot must preserve labels"
        );
    }

    #[test]
    fn calibration_is_captured_and_persisted_when_requested() {
        let cold = builder().calibrate(true).train(data()).unwrap();
        let report = cold.calibration().expect("calibration requested");
        assert!(report.evaluated > 0);
        assert!(report.mean >= 1.0);
        let bytes = cold.to_snapshot_bytes().unwrap();
        let warm = LafPipeline::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(warm.calibration(), cold.calibration());
    }

    #[test]
    fn warm_pipeline_restores_the_persisted_engine_for_every_choice() {
        // The v2 acceptance bar: for each persistable engine the warm
        // pipeline restores the *built* structure (no rebuild) and its first
        // clustering is byte-identical to the training process.
        for choice in [
            EngineChoice::Grid { cell_side: 0.5 },
            EngineChoice::KMeansTree {
                branching: 4,
                leaf_ratio: 0.6,
            },
            EngineChoice::Ivf {
                nlist: 6,
                nprobe: 2,
            },
        ] {
            let config = LafConfig {
                engine: choice,
                ..LafConfig::new(0.3, 4, 1.0)
            };
            let cold = LafPipeline::builder(config)
                .net(NetConfig::tiny())
                .training(TrainingSetBuilder {
                    max_queries: Some(60),
                    ..Default::default()
                })
                .train(data())
                .unwrap();
            assert!(
                cold.persisted_engine().is_some(),
                "{choice:?}: cold path must persist the built engine"
            );
            let warm =
                LafPipeline::from_snapshot_bytes(&cold.to_snapshot_bytes().unwrap()).unwrap();
            let persisted = warm
                .persisted_engine()
                .unwrap_or_else(|| panic!("{choice:?}: engine must survive the snapshot"));
            assert!(persisted.matches_choice(&choice), "{choice:?}");

            let (cold_clustering, cold_stats) = cold.cluster_with_stats();
            let (warm_clustering, warm_stats) = warm.cluster_with_stats();
            assert_eq!(
                cold_clustering.labels(),
                warm_clustering.labels(),
                "{choice:?}: labels must be byte-identical"
            );
            assert_eq!(cold_stats, warm_stats, "{choice:?}");
        }
    }

    #[test]
    fn cover_tree_pipelines_persist_their_arena() {
        let config = LafConfig {
            engine: EngineChoice::CoverTree { basis: 2.0 },
            ..LafConfig::new(0.3, 4, 1.0)
        };
        let cold = LafPipeline::builder(config)
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(60),
                ..Default::default()
            })
            .train(data())
            .unwrap();
        // The arena-flattening persist path covers every engine kind now;
        // warm starts restore the cover tree instead of rebuilding it.
        assert!(cold.persisted_engine().is_some());
        let warm = LafPipeline::from_snapshot_bytes(&cold.to_snapshot_bytes().unwrap()).unwrap();
        assert!(warm.persisted_engine().is_some());
        assert_eq!(warm.engine().num_points(), warm.data().len());
        assert_eq!(
            cold.cluster().labels(),
            warm.cluster().labels(),
            "restored arena must stay bit-exact"
        );
    }

    #[test]
    fn engine_is_rebuilt_from_the_restored_choice() {
        let config = LafConfig {
            engine: EngineChoice::Grid { cell_side: 0.5 },
            ..LafConfig::new(0.3, 4, 1.0)
        };
        let cold = LafPipeline::builder(config)
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(60),
                ..Default::default()
            })
            .train(data())
            .unwrap();
        let warm = LafPipeline::from_snapshot_bytes(&cold.to_snapshot_bytes().unwrap()).unwrap();
        assert_eq!(
            warm.config().engine,
            EngineChoice::Grid { cell_side: 0.5 },
            "engine choice must survive the snapshot"
        );
        let engine = warm.engine();
        assert_eq!(engine.num_points(), warm.data().len());
        let hits = engine.range(warm.data().row(0), 0.3);
        assert!(hits.contains(&0));
    }

    #[test]
    fn pipeline_clusters_fresh_datasets() {
        let pipeline = builder().train(data()).unwrap();
        let fresh = EmbeddingMixtureConfig {
            n_points: 80,
            dim: 10,
            clusters: 2,
            seed: 99,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0;
        let (labels, stats) = pipeline.cluster_dataset(&fresh);
        assert_eq!(labels.len(), fresh.len());
        assert_eq!(stats.cardest_calls as usize, fresh.len());
    }

    #[test]
    fn training_builder_override_cannot_flip_the_metric() {
        // The idiomatic `..Default::default()` override resets the builder's
        // metric field to cosine; the pipeline must still train under the
        // config's metric, or gate decisions would be systematically wrong.
        let config = LafConfig {
            metric: laf_vector::Metric::Euclidean,
            eps: 0.6,
            ..LafConfig::new(0.6, 4, 1.0)
        };
        let euclidean = LafPipeline::builder(config.clone())
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(60),
                ..Default::default() // metric: Cosine — must be overridden
            })
            .train(data())
            .unwrap();
        // Train a cosine pipeline from the identical builder inputs: if the
        // metric override worked, the learned weights must differ.
        let cosine = LafPipeline::builder(LafConfig::new(0.6, 4, 1.0))
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(60),
                ..Default::default()
            })
            .train(data())
            .unwrap();
        let q = data();
        let q = q.row(0);
        assert_ne!(
            euclidean.estimate(q, 0.6).to_bits(),
            cosine.estimate(q, 0.6).to_bits(),
            "estimator must have been trained under the config's metric"
        );
    }

    #[test]
    fn calibration_queries_use_a_distinct_stream_from_training() {
        // Calibrating on the exact query sample the network was fitted to
        // would overstate accuracy. The calibration sampler must not replay
        // the training sampler's permutation.
        use rand::SeedableRng;
        let seed = TrainingSetBuilder::default().seed;
        let d = data();
        let mut train_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (_, train_idx) = d.sample(super::CALIBRATION_QUERIES, &mut train_rng);
        let mut calib_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xCA11_B8A7_E5EE_D000);
        let (_, calib_idx) = d.sample(super::CALIBRATION_QUERIES, &mut calib_rng);
        assert_ne!(
            train_idx, calib_idx,
            "calibration must not replay the training sample order"
        );
    }

    #[test]
    fn engine_is_built_once_and_shared_across_calls() {
        let config = LafConfig {
            engine: EngineChoice::Grid { cell_side: 0.5 },
            ..LafConfig::new(0.3, 4, 1.0)
        };
        let pipeline = LafPipeline::builder(config)
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(60),
                ..Default::default()
            })
            .train(data())
            .unwrap();
        let first = pipeline.engine();
        let second = pipeline.engine();
        assert!(
            SharedEngine::ptr_eq(&first, &second),
            "repeated engine() calls must observe the same cached build"
        );
        // The cache must not change what the pipeline computes: labels from
        // repeated runs (all through the cached engine) stay byte-identical.
        let (a, stats_a) = pipeline.cluster_with_stats();
        let (b, stats_b) = pipeline.cluster_with_stats();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn shared_engine_outlives_its_pipeline() {
        let pipeline = builder().train(data()).unwrap();
        let n = pipeline.data().len();
        let q: Vec<f32> = pipeline.data().row(0).to_vec();
        let engine = pipeline.engine();
        drop(pipeline);
        // The handle co-owns the snapshot; queries still serve.
        assert_eq!(engine.num_points(), n);
        assert!(engine.range(&q, 0.3).contains(&0));
    }

    #[test]
    fn into_snapshot_survives_live_engine_handles() {
        let pipeline = builder().train(data()).unwrap();
        let engine = pipeline.engine();
        let labels_before = pipeline.cluster().labels().to_vec();
        // A live handle forces the clone fallback; the round-tripped
        // snapshot must still be fully usable and bit-exact.
        let snapshot = pipeline.into_snapshot();
        assert_eq!(engine.num_points(), snapshot.data.len());
        let revived = LafPipeline::from_snapshot(snapshot);
        assert_eq!(revived.cluster().labels(), labels_before.as_slice());
    }

    #[test]
    fn sharded_pipelines_cluster_bit_identically_to_unsharded() {
        // The tentpole guarantee at the pipeline level: same training
        // inputs, different shard counts, byte-identical outputs.
        let config = LafConfig {
            engine: EngineChoice::Grid { cell_side: 0.5 },
            ..LafConfig::new(0.3, 4, 1.0)
        };
        let mk = |shards: usize| {
            LafPipeline::builder(config.clone())
                .net(NetConfig::tiny())
                .training(TrainingSetBuilder {
                    max_queries: Some(60),
                    ..Default::default()
                })
                .shards(shards)
                .train(data())
                .unwrap()
        };
        let unsharded = mk(1);
        let (base_clustering, base_stats) = unsharded.cluster_with_stats();
        for n in [2usize, 3, 7] {
            let sharded = mk(n);
            assert_eq!(sharded.snapshot_arc().shards.len(), n, "{n} shards");
            assert!(sharded.persisted_engine().is_none());
            let (clustering, stats) = sharded.cluster_with_stats();
            assert_eq!(
                clustering.labels(),
                base_clustering.labels(),
                "{n} shards: labels must be byte-identical"
            );
            assert_eq!(stats, base_stats, "{n} shards");
        }
    }

    #[test]
    fn sharded_warm_start_restores_per_shard_engines_via_mmap() {
        let dir = std::env::temp_dir().join("laf_core_pipeline_shard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sharded_{}.lafs", std::process::id()));
        let config = LafConfig {
            engine: EngineChoice::Ivf {
                nlist: 4,
                nprobe: 4,
            },
            ..LafConfig::new(0.3, 4, 1.0)
        };
        let cold = LafPipeline::builder(config)
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(60),
                ..Default::default()
            })
            .shards(3)
            .train_and_save(data(), &path)
            .unwrap();
        let warm = LafPipeline::load_mmap(&path).unwrap();
        let snap = warm.snapshot_arc();
        assert_eq!(snap.shards.len(), 3);
        for (i, shard) in snap.shards.iter().enumerate() {
            assert!(
                cfg!(target_endian = "big") || shard.data.is_mapped(),
                "shard {i} must be served from the mapping"
            );
            assert!(
                shard.engine.is_some(),
                "shard {i} must carry its persisted engine"
            );
        }
        let (cold_clustering, cold_stats) = cold.cluster_with_stats();
        let (warm_clustering, warm_stats) = warm.cluster_with_stats();
        assert_eq!(cold_clustering.labels(), warm_clustering.labels());
        assert_eq!(cold_stats, warm_stats);
        drop(warm);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_counts_larger_than_the_dataset_are_clamped() {
        let pipeline = builder().shards(10_000).train(data()).unwrap();
        let snap = pipeline.snapshot_arc();
        assert_eq!(snap.shards.len(), snap.data.len(), "one row per shard");
        assert_eq!(
            snap.shards.iter().map(|s| s.data.len()).sum::<usize>(),
            snap.data.len()
        );
        assert_eq!(pipeline.engine().num_points(), snap.data.len());
    }

    #[test]
    fn pipeline_and_engine_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LafPipeline>();
        assert_send_sync::<SharedEngine>();
        assert_send_sync::<std::sync::Arc<LafPipeline>>();
    }

    #[test]
    fn training_on_an_empty_dataset_fails_cleanly() {
        let empty = Dataset::new(8).unwrap();
        let err = builder().train(empty).unwrap_err();
        assert!(matches!(err, SnapshotError::Vector(_)));
    }
}
