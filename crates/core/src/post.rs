//! Post-processing (Algorithm 3 of the paper): detect false-negative
//! predictions and merge the clusters they wrongly separated.

use crate::partial::PartialNeighborMap;
use laf_clustering::NOISE;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Outcome counters of one post-processing pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostReport {
    /// Predicted stop points whose partial-neighbor count reached τ.
    pub detected_false_negatives: u64,
    /// Pairs of distinct clusters that were merged.
    pub merged_clusters: u64,
    /// False-negative points that were re-labeled from noise into the
    /// destination cluster.
    pub relabeled_points: u64,
}

/// Post-processor parameterized by the core threshold τ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostProcessor {
    /// Minimum number of (partial) neighbors that proves a predicted stop
    /// point was actually core.
    pub tau: usize,
}

impl PostProcessor {
    /// Create a post-processor.
    pub fn new(tau: usize) -> Self {
        Self { tau }
    }

    /// Algorithm 3: for every predicted stop point `P` with `|E(P)| ≥ τ`,
    /// pick a non-noise partial neighbor `P'`, use its cluster as the
    /// destination, and merge the clusters of all of `P`'s partial neighbors
    /// into it. `P` itself joins the destination cluster.
    ///
    /// Where the paper says "randomly select a non-noise neighbor", this
    /// implementation picks the partial neighbor with the smallest index so
    /// that runs are reproducible; the choice only affects which surviving
    /// cluster id the merged cluster carries, not the partition itself.
    pub fn process(&self, labels: &mut [i64], partial: &PartialNeighborMap) -> PostReport {
        let mut report = PostReport::default();
        if labels.is_empty() {
            return report;
        }

        // Union-find over cluster ids (labels >= 0).
        let max_label = labels.iter().copied().max().unwrap_or(-1);
        if max_label < 0 {
            // Nothing but noise: there are no clusters to merge, but false
            // negatives are still counted for reporting.
            report.detected_false_negatives = partial.false_negatives(self.tau).len() as u64;
            return report;
        }
        let mut uf = UnionFind::new((max_label + 1) as usize);
        // Deferred label assignments for the false-negative points themselves.
        let mut pending_joins: Vec<(usize, i64)> = Vec::new();

        for p in partial.false_negatives(self.tau) {
            report.detected_false_negatives += 1;
            let mut neighbors: Vec<u32> = partial.partial_neighbors(p).collect();
            neighbors.sort_unstable();
            // Destination cluster: the first non-noise partial neighbor.
            let Some(dest) = neighbors
                .iter()
                .map(|&nb| labels[nb as usize])
                .find(|&l| l != NOISE)
            else {
                continue;
            };
            // Merge every cluster that appears among the partial neighbors.
            for &nb in &neighbors {
                let l = labels[nb as usize];
                if l != NOISE && l != dest && uf.union(dest as usize, l as usize) {
                    report.merged_clusters += 1;
                }
            }
            pending_joins.push((p as usize, dest));
        }

        // Apply the union-find to every labeled point.
        for l in labels.iter_mut() {
            if *l >= 0 {
                *l = uf.find(*l as usize) as i64;
            }
        }
        // The false negatives join their destination cluster (they are core
        // points in truth, so leaving them as noise would be strictly worse).
        for (point, dest) in pending_joins {
            let resolved = uf.find(dest as usize) as i64;
            if labels[point] == NOISE {
                report.relabeled_points += 1;
            }
            labels[point] = resolved;
        }

        compact_labels(labels);
        report
    }
}

/// Renumber cluster ids to 0..k preserving first-appearance order.
fn compact_labels(labels: &mut [i64]) {
    let mut remap: HashMap<i64, i64> = HashMap::new();
    for l in labels.iter_mut() {
        if *l == NOISE {
            continue;
        }
        let next = remap.len() as i64;
        let id = *remap.entry(*l).or_insert(next);
        *l = id;
    }
}

/// Minimal union-find (path compression, union by attaching to the root of
/// the destination).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Returns `true` when two previously distinct sets were joined.
    fn union(&mut self, dest: usize, other: usize) -> bool {
        let rd = self.find(dest);
        let ro = self.find(other);
        if rd == ro {
            return false;
        }
        self.parent[ro] = rd;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a map with one tracked stop point and the given partial
    /// neighbors.
    fn map_with(stop: u32, partial_neighbors: &[u32]) -> PartialNeighborMap {
        let mut e = PartialNeighborMap::new();
        e.register_stop_point(stop);
        for &q in partial_neighbors {
            e.update(q, &[stop]);
        }
        e
    }

    #[test]
    fn merges_clusters_split_by_a_false_negative() {
        // Points 0-2 form cluster 0, points 4-6 form cluster 1; point 3 sits
        // between them, was predicted non-core (skipped) but has 4 partial
        // neighbors — a false negative that should glue the clusters.
        let mut labels = vec![0, 0, 0, NOISE, 1, 1, 1];
        let e = map_with(3, &[1, 2, 4, 5]);
        let report = PostProcessor::new(3).process(&mut labels, &e);
        assert_eq!(report.detected_false_negatives, 1);
        assert_eq!(report.merged_clusters, 1);
        assert_eq!(report.relabeled_points, 1);
        // Everything is now one cluster and point 3 joined it.
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn below_tau_nothing_happens() {
        let mut labels = vec![0, 0, NOISE, 1, 1];
        let e = map_with(2, &[0, 3]);
        let report = PostProcessor::new(3).process(&mut labels, &e);
        assert_eq!(report.detected_false_negatives, 0);
        assert_eq!(report.merged_clusters, 0);
        assert_eq!(labels, vec![0, 0, NOISE, 1, 1]);
    }

    #[test]
    fn all_noise_neighbors_cannot_pick_a_destination() {
        let mut labels = vec![NOISE, NOISE, NOISE, NOISE];
        let e = map_with(0, &[1, 2, 3]);
        let report = PostProcessor::new(3).process(&mut labels, &e);
        assert_eq!(report.detected_false_negatives, 1);
        assert_eq!(report.merged_clusters, 0);
        assert!(labels.iter().all(|&l| l == NOISE));
    }

    #[test]
    fn three_way_merge_counts_two_joins() {
        let mut labels = vec![0, 0, 1, 1, 2, 2, NOISE];
        let e = map_with(6, &[0, 2, 4]);
        let report = PostProcessor::new(3).process(&mut labels, &e);
        assert_eq!(report.merged_clusters, 2);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn unrelated_clusters_are_untouched() {
        let mut labels = vec![0, 0, 1, 1, 2, 2, NOISE];
        // False negative only bridges clusters 0 and 1; cluster 2 survives.
        let e = map_with(6, &[0, 1, 2]);
        let report = PostProcessor::new(3).process(&mut labels, &e);
        assert_eq!(report.merged_clusters, 1);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[4]);
        // Ids are compacted.
        let max = labels.iter().copied().max().unwrap();
        assert_eq!(max, 1);
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut labels: Vec<i64> = vec![];
        let report = PostProcessor::new(3).process(&mut labels, &PartialNeighborMap::new());
        assert_eq!(report, PostReport::default());

        let mut labels = vec![0, 1, NOISE];
        let report = PostProcessor::new(3).process(&mut labels, &PartialNeighborMap::new());
        assert_eq!(report.detected_false_negatives, 0);
        assert_eq!(labels, vec![0, 1, NOISE]);
    }

    #[test]
    fn only_noise_labels_with_false_negatives_is_safe() {
        let mut labels = vec![NOISE, NOISE, NOISE];
        let e = map_with(0, &[1, 2]);
        let report = PostProcessor::new(2).process(&mut labels, &e);
        assert_eq!(report.detected_false_negatives, 1);
        assert_eq!(labels, vec![NOISE, NOISE, NOISE]);
    }
}
