//! Versioned, checksummed binary snapshots — the boundary between the
//! offline training plane and the online serving plane.
//!
//! The paper's premise is *train once, serve many*: the cardinality estimator
//! is fitted offline and then amortized across clustering runs. A
//! [`Snapshot`] persists everything a serving process needs to rebuild the
//! exact training-time pipeline:
//!
//! * the [`LafConfig`] (ε, τ, α, metric and the [`laf_index::EngineChoice`]
//!   needed to rebuild the range-query engine),
//! * the [`Dataset`] (flat-buffer encoded via [`laf_vector::io`]),
//! * the trained [`MlpEstimator`] (raw IEEE-754 weight bits via
//!   [`MlpEstimator::encode_binary`] — **bit-exact**, not a text round-trip),
//! * optionally a [`QErrorReport`] calibration summary captured at train
//!   time,
//! * optionally (format v2) the **built range-query engine structure**
//!   ([`laf_index::PersistedEngine`]: grid cells, k-means tree nodes, IVF
//!   posting lists), so a warm start restores the engine instead of paying
//!   the bucketing / k-means construction cost again.
//!
//! # Wire format
//!
//! All integers little-endian. **Version 3** (current writer):
//!
//! ```text
//! magic              4 bytes   b"LAFS"
//! format version     u32       3
//! section count      u32
//! section table      count x { id: u32, offset: u64, len: u64, crc: u32 }
//!                              (offsets relative to the payload start; `crc`
//!                               is CRC-32 (IEEE) over that section's body)
//! payload            section bodies, each padded with leading zero bytes so
//!                              its absolute file offset is a multiple of 8
//! header checksum    u32       CRC-32 (IEEE) over every byte before the
//!                              payload (magic, version, count, table)
//! ```
//!
//! Version 3 differs from version 2 in exactly one rule: **every section
//! body starts at an 8-byte-aligned file offset** (the writer inserts zero
//! padding before a section as needed, and the reader rejects nonzero
//! padding so every byte of the file stays covered by a check). Alignment is
//! what makes zero-copy warm starts possible: a memory-mapped v3 file places
//! the dataset section's `f32` payload at a 4-byte-aligned address, so
//! [`Snapshot::open_mmap`] can serve it **in place** (see
//! [`laf_vector::mapped`]) instead of copying it into a fresh `Vec<f32>` —
//! warm-start cost becomes O(index-restore) instead of O(dataset), and all
//! serving processes mapping one snapshot share one set of page-cache pages.
//! Since the writer is also streaming ([`Snapshot::encode_to_writer`]), the
//! encoded snapshot never needs to be assembled in memory on either side.
//!
//! **Version 2** (still read; [`Snapshot::encode_v2`] exists for
//! compatibility tests) is the same layout without the alignment rule. The
//! per-section CRC table is what v2 bought besides the engine section: a
//! flipped byte is reported as *"section `estimator` (id 3) checksum
//! mismatch"* instead of one opaque whole-file failure, so operators know
//! which artifact to regenerate.
//!
//! **Version 1** (still read, no longer written;
//! [`Snapshot::encode_v1`] exists for compatibility fixtures):
//!
//! ```text
//! magic / version / count      as above, version 1
//! section table      count x { id: u32, offset: u64, len: u64 }
//! payload            concatenated section bodies
//! checksum           u32       CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! Compatibility rules: a reader **rejects** an unknown format version or any
//! checksum mismatch, **ignores** unknown section ids (so a newer writer may
//! append sections without breaking older readers), and **requires** the
//! config, dataset and estimator sections. The engine section is optional in
//! both directions: a v1 snapshot (or a newer snapshot whose engine was not
//! persistable) simply rebuilds the engine from the restored
//! [`laf_index::EngineChoice`] — the v1 serving behaviour. Loading a v1/v2
//! file through [`Snapshot::open_mmap`] works but copies the dataset (their
//! writers guaranteed no alignment), as does a v3 file whose dataset section
//! is misaligned or a big-endian host: the zero-copy reinterpret is an
//! optimization, never a compatibility cliff.

use crate::config::LafConfig;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use laf_cardest::{MlpEstimator, QErrorReport};
use laf_index::{PersistError, PersistedEngine};
use laf_vector::mapped::{self, Mmap};
use laf_vector::{io as vio, Dataset, VectorError};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes identifying a LAF snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"LAFS";
/// Current snapshot format version (what [`Snapshot::encode`] writes).
pub const SNAPSHOT_VERSION: u32 = 3;
/// Oldest snapshot format version this reader still accepts.
pub const SNAPSHOT_MIN_VERSION: u32 = 1;
/// Alignment (in bytes, relative to the file start) every section body is
/// padded to in format v3, so a mapped dataset section can be reinterpreted
/// as `&[f32]` in place.
pub const SECTION_ALIGN: usize = 8;

/// Section id: JSON-encoded [`LafConfig`] (JSON inside the binary container
/// so configuration fields can evolve under serde's defaulting rules without
/// a format-version bump).
const SECTION_CONFIG: u32 = 1;
/// Section id: flat-buffer encoded [`Dataset`] (`laf_vector::io` format).
const SECTION_DATASET: u32 = 2;
/// Section id: binary [`MlpEstimator`] (raw weight bits).
const SECTION_ESTIMATOR: u32 = 3;
/// Section id: JSON-encoded [`QErrorReport`] calibration summary (optional).
const SECTION_CALIBRATION: u32 = 4;
/// Section id: binary built engine structure (`laf_index::persist` format,
/// optional, v2 only).
const SECTION_ENGINE: u32 = 5;

/// Human-readable name of a section id, for error messages.
fn section_name(id: u32) -> &'static str {
    match id {
        SECTION_CONFIG => "config",
        SECTION_DATASET => "dataset",
        SECTION_ESTIMATOR => "estimator",
        SECTION_CALIBRATION => "calibration",
        SECTION_ENGINE => "engine",
        _ => "unknown",
    }
}

/// Errors produced while encoding, decoding or (de)serializing snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// Structural problem in the snapshot bytes (bad magic, unsupported
    /// version, checksum mismatch, a section spilling past the payload,
    /// missing required sections). Overlapping or duplicate-id sections are
    /// *not* rejected: each lookup bounds-checks independently and the first
    /// table entry with a matching id wins.
    Malformed(String),
    /// A section body failed to decode (dataset payload, estimator weights).
    Vector(VectorError),
    /// The engine section failed to decode or is inconsistent with the
    /// dataset/config it was persisted alongside.
    Engine(PersistError),
    /// A JSON section failed to (de)serialize.
    Json(serde_json::Error),
    /// Filesystem failure during load/save.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapshotError::Vector(e) => write!(f, "snapshot section error: {e}"),
            SnapshotError::Engine(e) => write!(f, "snapshot engine section error: {e}"),
            SnapshotError::Json(e) => write!(f, "snapshot JSON section error: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Vector(e) => Some(e),
            SnapshotError::Engine(e) => Some(e),
            SnapshotError::Json(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Malformed(_) => None,
        }
    }
}

impl From<VectorError> for SnapshotError {
    fn from(e: VectorError) -> Self {
        SnapshotError::Vector(e)
    }
}

impl From<PersistError> for SnapshotError {
    fn from(e: PersistError) -> Self {
        SnapshotError::Engine(e)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Json(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Slicing-by-8 CRC-32 (IEEE 802.3, reflected) lookup tables, built at
/// compile time. `CRC32_TABLES[0]` is the classic byte-at-a-time table;
/// table `k` maps a byte to its CRC contribution from `k` positions deeper
/// in the message, letting [`Crc32::update`] fold 8 input bytes per step.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            j += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Incremental CRC-32 (IEEE 802.3 polynomial, reflected).
///
/// Slicing-by-8 rather than bitwise: since format v3 the section checksums
/// are the *dominant* cost of an mmap warm start (the dataset itself is
/// served in place, so the CRC pass is the only O(dataset) work left), and
/// the streaming writer checksums the dataset section chunk by chunk without
/// materializing it — both want the many-times-cheaper per-byte step.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feed `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = &CRC32_TABLES;
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][c[4] as usize]
                ^ t[2][c[5] as usize]
                ^ t[1][c[6] as usize]
                ^ t[0][c[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum value.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finalize()
}

/// A parsed section table — `(id, offset, len)` entries with offsets into
/// the second element, the payload slice.
type ParsedSections<'a> = (Vec<(u32, usize, usize)>, &'a [u8]);

/// Everything a serving process needs to rebuild a trained LAF pipeline.
///
/// See the [module documentation](self) for the wire format. Snapshots are
/// usually handled through [`crate::LafPipeline`]; the raw type is exposed
/// for tooling that inspects or rewrites snapshot files.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The configuration the pipeline was trained under, including the
    /// engine choice used to rebuild the range-query index at load time.
    pub config: LafConfig,
    /// The indexed dataset.
    pub data: Dataset,
    /// The trained estimator (bit-exact across save/load).
    pub estimator: MlpEstimator,
    /// Calibration summary captured at training time, when requested.
    pub calibration: Option<QErrorReport>,
    /// The built range-query engine structure, when the engine choice is
    /// persistable (see [`laf_index::EngineChoice::persistable`]). `None` for
    /// v1 snapshots and non-persistable engines; the serving side then
    /// rebuilds from [`LafConfig::engine`].
    pub engine: Option<PersistedEngine>,
}

impl Snapshot {
    /// The section bodies shared by both format versions, in payload order.
    fn common_sections(&self) -> Result<Vec<(u32, Vec<u8>)>, SnapshotError> {
        let config_json = serde_json::to_string(&self.config)?;
        let calibration_json = self
            .calibration
            .as_ref()
            .map(serde_json::to_string)
            .transpose()?;

        let mut estimator_bytes: Vec<u8> = Vec::new();
        self.estimator.encode_binary(&mut estimator_bytes);

        let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(5);
        sections.push((SECTION_CONFIG, config_json.into_bytes()));
        let mut dataset_bytes: Vec<u8> = Vec::with_capacity(vio::encoded_len(&self.data));
        vio::encode_into(&self.data, &mut dataset_bytes);
        sections.push((SECTION_DATASET, dataset_bytes));
        sections.push((SECTION_ESTIMATOR, estimator_bytes));
        if let Some(json) = calibration_json {
            sections.push((SECTION_CALIBRATION, json.into_bytes()));
        }
        Ok(sections)
    }

    /// Encode into the current (version-3) snapshot format: per-section CRC
    /// table, 8-byte-aligned section bodies and, when present, the built
    /// engine structure. Equivalent to [`Snapshot::encode_to_writer`] into a
    /// fresh buffer.
    pub fn encode(&self) -> Result<Bytes, SnapshotError> {
        let mut buf: Vec<u8> = Vec::new();
        self.encode_to_writer(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    /// Stream the version-3 encoding into `writer` without ever assembling
    /// the whole snapshot in memory.
    ///
    /// The small sections (config, estimator, calibration, engine) are
    /// materialized — they are KBs — but the dataset section, which dominates
    /// the file, is checksummed and written in bounded chunks via
    /// [`laf_vector::io::encode_chunked`]. Peak writer-side memory is
    /// O(small sections + one chunk) instead of O(snapshot), roughly halving
    /// train-time peak RSS for large datasets (the old path held the dataset
    /// *and* its full encoding alive simultaneously).
    ///
    /// # Errors
    /// Propagates section serialization failures and writer I/O errors.
    /// Callers handing in a buffered writer should flush it afterwards (the
    /// [`Snapshot::save`] convenience does).
    pub fn encode_to_writer<W: Write>(&self, writer: &mut W) -> Result<(), SnapshotError> {
        // Section bodies: `None` stands for the dataset, which is streamed.
        let config_json = serde_json::to_string(&self.config)?;
        let mut estimator_bytes: Vec<u8> = Vec::new();
        self.estimator.encode_binary(&mut estimator_bytes);
        let calibration_json = self
            .calibration
            .as_ref()
            .map(serde_json::to_string)
            .transpose()?;

        let (dataset_crc, dataset_len) = {
            let mut crc = Crc32::new();
            let mut len = 0u64;
            let _ = vio::encode_chunked::<std::convert::Infallible>(&self.data, |chunk| {
                crc.update(chunk);
                len += chunk.len() as u64;
                Ok(())
            });
            (crc.finalize(), len)
        };
        debug_assert_eq!(dataset_len as usize, vio::encoded_len(&self.data));

        let mut sections: Vec<(u32, u64, u32, Option<Vec<u8>>)> = Vec::with_capacity(5);
        let push_bytes = |sections: &mut Vec<_>, id: u32, body: Vec<u8>| {
            sections.push((id, body.len() as u64, crc32(&body), Some(body)));
        };
        push_bytes(&mut sections, SECTION_CONFIG, config_json.into_bytes());
        sections.push((SECTION_DATASET, dataset_len, dataset_crc, None));
        push_bytes(&mut sections, SECTION_ESTIMATOR, estimator_bytes);
        if let Some(json) = calibration_json {
            push_bytes(&mut sections, SECTION_CALIBRATION, json.into_bytes());
        }
        if let Some(engine) = &self.engine {
            push_bytes(&mut sections, SECTION_ENGINE, engine.encode());
        }

        // Lay out the payload: each section body starts at a file offset
        // that is a multiple of SECTION_ALIGN, with zero padding in between.
        let header_len = 12 + sections.len() * 24;
        let mut header: Vec<u8> = Vec::with_capacity(header_len);
        header.extend_from_slice(SNAPSHOT_MAGIC);
        header.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        let mut pads: Vec<usize> = Vec::with_capacity(sections.len());
        let mut offset = 0u64;
        for (id, len, crc, _) in &sections {
            let absolute = header_len as u64 + offset;
            let pad =
                (SECTION_ALIGN as u64 - absolute % SECTION_ALIGN as u64) % SECTION_ALIGN as u64;
            pads.push(pad as usize);
            offset += pad;
            header.extend_from_slice(&id.to_le_bytes());
            header.extend_from_slice(&offset.to_le_bytes());
            header.extend_from_slice(&len.to_le_bytes());
            header.extend_from_slice(&crc.to_le_bytes());
            offset += len;
        }
        let header_crc = crc32(&header);

        writer.write_all(&header)?;
        const ZEROS: [u8; SECTION_ALIGN] = [0u8; SECTION_ALIGN];
        for ((_, _, _, body), pad) in sections.iter().zip(&pads) {
            writer.write_all(&ZEROS[..*pad])?;
            match body {
                Some(bytes) => writer.write_all(bytes)?,
                None => vio::encode_chunked(&self.data, |chunk| writer.write_all(chunk))?,
            }
        }
        writer.write_all(&header_crc.to_le_bytes())?;
        Ok(())
    }

    /// Encode into the legacy version-2 format (same table layout as v3 but
    /// no alignment padding, assembled in memory). Exists so compatibility
    /// tests can exercise the v2 read path; new snapshots should use
    /// [`Snapshot::encode`].
    pub fn encode_v2(&self) -> Result<Bytes, SnapshotError> {
        let mut sections = self.common_sections()?;
        if let Some(engine) = &self.engine {
            sections.push((SECTION_ENGINE, engine.encode()));
        }

        let table_len = sections.len() * 24;
        let payload_len: usize = sections.iter().map(|(_, b)| b.len()).sum();
        let mut buf = BytesMut::with_capacity(12 + table_len + payload_len + 4);
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(2);
        buf.put_u32_le(sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in &sections {
            buf.put_u32_le(*id);
            buf.put_u64_le(offset);
            buf.put_u64_le(body.len() as u64);
            buf.put_u32_le(crc32(body));
            offset += body.len() as u64;
        }
        let header_crc = crc32(&buf);
        for (_, body) in &sections {
            buf.put_slice(body);
        }
        buf.put_u32_le(header_crc);
        Ok(buf.freeze())
    }

    /// Encode into the legacy version-1 format (whole-file checksum, no
    /// engine section). Exists so compatibility fixtures — such as the
    /// committed golden snapshot CI loads through the v1 fallback path — can
    /// be regenerated; new snapshots should use [`Snapshot::encode`].
    pub fn encode_v1(&self) -> Result<Bytes, SnapshotError> {
        let sections = self.common_sections()?;
        let table_len = sections.len() * 20;
        let payload_len: usize = sections.iter().map(|(_, b)| b.len()).sum();
        let mut buf = BytesMut::with_capacity(12 + table_len + payload_len + 4);
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(1);
        buf.put_u32_le(sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in &sections {
            buf.put_u32_le(*id);
            buf.put_u64_le(offset);
            buf.put_u64_le(body.len() as u64);
            offset += body.len() as u64;
        }
        for (_, body) in &sections {
            buf.put_slice(body);
        }
        let checksum = crc32(&buf);
        buf.put_u32_le(checksum);
        Ok(buf.freeze())
    }

    /// Parse a version-1 header: verify the whole-file checksum, return the
    /// `(id, offset, len)` table and the payload slice.
    fn parse_v1(bytes: &[u8]) -> Result<ParsedSections<'_>, SnapshotError> {
        let (body, stored) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(stored.try_into().expect("4-byte split"));
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(SnapshotError::Malformed(format!(
                "checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
        let mut cursor: &[u8] = &body[8..]; // past magic + version
        let count = cursor.get_u32_le() as usize;
        if cursor.remaining() < count * 20 {
            return Err(SnapshotError::Malformed(format!(
                "section table for {count} sections exceeds the payload"
            )));
        }
        let mut table: Vec<(u32, usize, usize)> = Vec::with_capacity(count);
        for _ in 0..count {
            let id = cursor.get_u32_le();
            let offset = cursor.get_u64_le() as usize;
            let len = cursor.get_u64_le() as usize;
            table.push((id, offset, len));
        }
        Ok((table, cursor))
    }

    /// Parse a version-2/3 header: verify the header/table checksum, then
    /// verify **every** section's CRC (known or not) so corruption is
    /// reported by section name before any body is parsed. For version 3,
    /// additionally require every payload byte *outside* the listed sections
    /// (the alignment padding) to be zero, so no byte of the file escapes
    /// verification.
    fn parse_tabled(bytes: &[u8], version: u32) -> Result<ParsedSections<'_>, SnapshotError> {
        let mut cursor: &[u8] = &bytes[8..];
        let count = cursor.get_u32_le() as usize;
        let header_len = 12 + count * 24;
        if bytes.len() < header_len + 4 {
            return Err(SnapshotError::Malformed(format!(
                "section table for {count} sections exceeds the file"
            )));
        }
        let stored = &bytes[bytes.len() - 4..];
        let stored_crc = u32::from_le_bytes(stored.try_into().expect("4-byte slice"));
        let actual_crc = crc32(&bytes[..header_len]);
        if stored_crc != actual_crc {
            return Err(SnapshotError::Malformed(format!(
                "header checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
        let payload = &bytes[header_len..bytes.len() - 4];
        let mut table: Vec<(u32, usize, usize)> = Vec::with_capacity(count);
        for _ in 0..count {
            let id = cursor.get_u32_le();
            let offset = cursor.get_u64_le() as usize;
            let len = cursor.get_u64_le() as usize;
            let crc = cursor.get_u32_le();
            let end = offset.checked_add(len).ok_or_else(|| {
                SnapshotError::Malformed(format!(
                    "section `{}` (id {id}) length overflow",
                    section_name(id)
                ))
            })?;
            if end > payload.len() {
                return Err(SnapshotError::Malformed(format!(
                    "section `{}` (id {id}) spans {offset}..{end} but the payload holds {} bytes",
                    section_name(id),
                    payload.len()
                )));
            }
            let actual = crc32(&payload[offset..end]);
            if actual != crc {
                return Err(SnapshotError::Malformed(format!(
                    "section `{}` (id {id}) checksum mismatch: stored {crc:#010x}, computed {actual:#010x}",
                    section_name(id)
                )));
            }
            table.push((id, offset, len));
        }
        if version >= 3 {
            Self::check_padding(&table, payload)?;
        }
        Ok((table, payload))
    }

    /// Verify that every payload byte not covered by a listed section is
    /// zero — format v3's padding rule. Keeps the "every corrupted byte is
    /// detected" property the per-section CRCs give the section bodies.
    fn check_padding(table: &[(u32, usize, usize)], payload: &[u8]) -> Result<(), SnapshotError> {
        let mut spans: Vec<(usize, usize)> = table
            .iter()
            .map(|&(_, offset, len)| (offset, offset + len))
            .collect();
        spans.sort_unstable();
        spans.push((payload.len(), payload.len()));
        let mut cursor = 0usize;
        for (start, end) in spans {
            if start > cursor {
                if let Some(i) = payload[cursor..start].iter().position(|&b| b != 0) {
                    return Err(SnapshotError::Malformed(format!(
                        "nonzero padding byte at payload offset {}",
                        cursor + i
                    )));
                }
            }
            cursor = cursor.max(end);
        }
        Ok(())
    }

    /// Decode a snapshot produced by [`Snapshot::encode`] (version 3) or an
    /// older writer (versions 1 and 2). The dataset is always copied into an
    /// owned buffer; use [`Snapshot::open_mmap`] / [`Snapshot::decode_mapped`]
    /// for the zero-copy path.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Malformed`] on any structural problem and the
    /// wrapped section error when a section body fails to decode. Checksums
    /// are verified **before** any section is parsed, so a corrupted file is
    /// rejected rather than half-loaded; since format v2 the failing section
    /// is named.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::decode_impl(bytes, None)
    }

    /// Decode a snapshot directly from a shared file mapping.
    ///
    /// Identical validation to [`Snapshot::decode`] — every checksum is
    /// verified once, against the mapping — but for a format-v3 file whose
    /// dataset section meets the alignment rule (every file the v3 writer
    /// produces does), the dataset is served **in place** from the mapping:
    /// no `Vec<f32>` allocation, no copy, page-cache pages shared with every
    /// other process mapping the same file. Misaligned v3 files, v1/v2
    /// files and big-endian hosts fall back to the copying path
    /// transparently.
    pub fn decode_mapped(map: &Arc<Mmap>) -> Result<Self, SnapshotError> {
        Self::decode_impl(&map[..], Some(map))
    }

    fn decode_impl(bytes: &[u8], map: Option<&Arc<Mmap>>) -> Result<Self, SnapshotError> {
        if bytes.len() < 16 {
            return Err(SnapshotError::Malformed(format!(
                "{} bytes is shorter than the fixed header",
                bytes.len()
            )));
        }
        let mut cursor: &[u8] = bytes;
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        if &magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Malformed(format!("bad magic {magic:?}")));
        }
        let version = cursor.get_u32_le();
        let (table, payload) = match version {
            1 => Self::parse_v1(bytes)?,
            2 | 3 => Self::parse_tabled(bytes, version)?,
            _ => {
                return Err(SnapshotError::Malformed(format!(
                    "unsupported snapshot version {version} (this reader supports \
                     {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION})"
                )))
            }
        };

        let section = |wanted: u32| -> Result<Option<&[u8]>, SnapshotError> {
            for &(id, offset, len) in &table {
                if id != wanted {
                    continue;
                }
                let end = offset.checked_add(len).ok_or_else(|| {
                    SnapshotError::Malformed(format!("section {id} length overflow"))
                })?;
                if end > payload.len() {
                    return Err(SnapshotError::Malformed(format!(
                        "section {id} spans {offset}..{end} but the payload holds {} bytes",
                        payload.len()
                    )));
                }
                return Ok(Some(&payload[offset..end]));
            }
            Ok(None)
        };
        let required = |wanted: u32, name: &str| -> Result<&[u8], SnapshotError> {
            section(wanted)?.ok_or_else(|| {
                SnapshotError::Malformed(format!("missing required section {name} (id {wanted})"))
            })
        };

        let config: LafConfig = serde_json::from_str(
            std::str::from_utf8(required(SECTION_CONFIG, "config")?)
                .map_err(|e| SnapshotError::Malformed(format!("config is not UTF-8: {e}")))?,
        )?;
        let dataset_section = required(SECTION_DATASET, "dataset")?;
        let data = match map {
            // Zero-copy only for v3: its writer is the one that guarantees
            // section alignment. `dataset_from_map` still re-checks the
            // actual pointer and falls back to copying when a (hand-built)
            // v3 file is misaligned.
            Some(map) if version >= 3 => {
                let offset = dataset_section.as_ptr() as usize - bytes.as_ptr() as usize;
                mapped::dataset_from_map(map, offset, dataset_section.len())?
            }
            _ => vio::decode(dataset_section)?,
        };
        let mut estimator_bytes = required(SECTION_ESTIMATOR, "estimator")?;
        let estimator = MlpEstimator::decode_binary(&mut estimator_bytes)?;
        if !estimator_bytes.is_empty() {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after the estimator section",
                estimator_bytes.len()
            )));
        }
        if estimator.data_dim() != data.dim() {
            return Err(SnapshotError::Malformed(format!(
                "estimator expects {}-dimensional queries but the dataset is {}-dimensional",
                estimator.data_dim(),
                data.dim()
            )));
        }
        let calibration = section(SECTION_CALIBRATION)?
            .map(|b| -> Result<QErrorReport, SnapshotError> {
                Ok(serde_json::from_str(std::str::from_utf8(b).map_err(
                    |e| SnapshotError::Malformed(format!("calibration is not UTF-8: {e}")),
                )?)?)
            })
            .transpose()?;
        let engine = section(SECTION_ENGINE)?
            .map(PersistedEngine::decode)
            .transpose()?;
        if let Some(engine) = &engine {
            if engine.metric() != config.metric {
                return Err(SnapshotError::Malformed(format!(
                    "engine section was persisted under {:?} but the config metric is {:?}",
                    engine.metric(),
                    config.metric
                )));
            }
            if !engine.matches_choice(&config.engine) {
                return Err(SnapshotError::Malformed(format!(
                    "engine section holds a `{}` structure but the config engine is {:?}",
                    engine.kind(),
                    config.engine
                )));
            }
            engine.validate(data.len(), data.dim())?;
        }

        Ok(Self {
            config,
            data,
            estimator,
            calibration,
            engine,
        })
    }

    /// Write the encoded snapshot to `path`, streaming via
    /// [`Snapshot::encode_to_writer`] so the file is never assembled in
    /// memory.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        let file = fs::File::create(path)?;
        let mut writer = std::io::BufWriter::new(file);
        self.encode_to_writer(&mut writer)?;
        writer.flush()?;
        Ok(())
    }

    /// Read and decode a snapshot previously written with [`Snapshot::save`],
    /// copying the dataset into an owned buffer.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let bytes = fs::read(path)?;
        Self::decode(&bytes)
    }

    /// Memory-map the snapshot at `path` and decode it zero-copy: the file
    /// is validated (every checksum verified once, against the mapping) and
    /// the dataset section of a format-v3 file is served in place — see
    /// [`Snapshot::decode_mapped`]. Needs only read access to the file.
    pub fn open_mmap<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let map = mapped::map_file(path)?;
        Self::decode_mapped(&map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::{CardinalityEstimator, NetConfig, TrainingSetBuilder};
    use laf_index::{build_engine, EngineChoice};
    use laf_synth::EmbeddingMixtureConfig;

    fn trained_snapshot() -> Snapshot {
        let (data, _) = EmbeddingMixtureConfig {
            n_points: 120,
            dim: 6,
            clusters: 3,
            seed: 77,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let training = TrainingSetBuilder {
            max_queries: Some(60),
            ..Default::default()
        }
        .build(&data, &data)
        .unwrap();
        let estimator = MlpEstimator::train(&training, &NetConfig::tiny());
        Snapshot {
            config: LafConfig::new(0.3, 4, 1.5),
            data,
            estimator,
            calibration: None,
            engine: None,
        }
    }

    /// The same snapshot with a persisted engine structure attached.
    fn snapshot_with_engine(choice: EngineChoice) -> Snapshot {
        let mut snap = trained_snapshot();
        snap.config.engine = choice;
        let persisted = {
            let engine = build_engine(choice, &snap.data, snap.config.metric, snap.config.eps);
            engine.persist()
        };
        snap.engine = persisted;
        snap
    }

    /// Hand-build a raw snapshot file in either format version from explicit
    /// `(id, body)` sections.
    fn build_raw(version: u32, sections: &[(u32, &[u8])]) -> Vec<u8> {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(version);
        buf.put_u32_le(sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in sections {
            buf.put_u32_le(*id);
            buf.put_u64_le(offset);
            buf.put_u64_le(body.len() as u64);
            if version >= 2 {
                buf.put_u32_le(crc32(body));
            }
            offset += body.len() as u64;
        }
        let header_crc = crc32(&buf);
        for (_, body) in sections {
            buf.put_slice(body);
        }
        if version >= 2 {
            buf.put_u32_le(header_crc);
        } else {
            let crc = crc32(&buf);
            buf.put_u32_le(crc);
        }
        buf
    }

    fn raw_sections(snap: &Snapshot) -> Vec<(u32, Vec<u8>)> {
        snap.common_sections().unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_round_trip_is_bit_exact() {
        let snap = trained_snapshot();
        let bytes = snap.encode().unwrap();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.data, snap.data);
        assert!(back.calibration.is_none());
        assert!(back.engine.is_none());
        for i in 0..snap.data.len() {
            assert_eq!(
                snap.estimator.estimate(snap.data.row(i), 0.4).to_bits(),
                back.estimator.estimate(back.data.row(i), 0.4).to_bits(),
                "row {i}"
            );
        }
    }

    #[test]
    fn v1_snapshots_still_load_without_an_engine() {
        // The backward-compatibility guarantee: a v1 file decodes through the
        // legacy path and reports no persisted engine, so serving falls back
        // to rebuilding from the config.
        let snap = trained_snapshot();
        let bytes = snap.encode_v1().unwrap();
        assert_eq!(bytes[4], 1, "encode_v1 must write format version 1");
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.data, snap.data);
        assert!(back.engine.is_none());
    }

    #[test]
    fn engine_section_round_trips_for_every_persistable_choice() {
        for choice in [
            EngineChoice::Linear,
            EngineChoice::Grid { cell_side: 0.5 },
            EngineChoice::KMeansTree {
                branching: 3,
                leaf_ratio: 0.7,
            },
            EngineChoice::Ivf {
                nlist: 4,
                nprobe: 2,
            },
        ] {
            let snap = snapshot_with_engine(choice);
            let persisted = snap.engine.clone().expect("persistable engine");
            let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
            assert_eq!(back.engine.as_ref(), Some(&persisted), "{choice:?}");
        }
    }

    #[test]
    fn non_persistable_engine_is_omitted_not_fatal() {
        let snap = snapshot_with_engine(EngineChoice::CoverTree { basis: 2.0 });
        assert!(snap.engine.is_none());
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert!(back.engine.is_none());
        assert_eq!(back.config.engine, EngineChoice::CoverTree { basis: 2.0 });
    }

    #[test]
    fn calibration_section_round_trips() {
        let mut snap = trained_snapshot();
        snap.calibration = Some(QErrorReport {
            evaluated: 42,
            mean: 1.5,
            median: 1.2,
            p95: 3.0,
            max: 9.0,
        });
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back.calibration, snap.calibration);
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        for bytes in [
            snap.encode().unwrap().to_vec(),
            snap.encode_v2().unwrap().to_vec(),
            snap.encode_v1().unwrap().to_vec(),
        ] {
            // Flip one byte at a sample of positions spread over the whole
            // file: a check (header/per-section CRC in v2+, whole-file CRC
            // in v1, the zero-padding rule in v3) must reject every one.
            let stride = (bytes.len() / 64).max(1);
            for pos in (0..bytes.len()).step_by(stride) {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 0x40;
                assert!(
                    Snapshot::decode(&corrupt).is_err(),
                    "flip at byte {pos} went undetected"
                );
            }
        }
    }

    #[test]
    fn corruption_in_each_section_names_that_section() {
        // Flip one byte in the middle of every section's body and demand the
        // decode error name the section — this is the operational win of the
        // v2 per-section CRC table over v1's single whole-file checksum.
        let mut snap = snapshot_with_engine(EngineChoice::KMeansTree {
            branching: 3,
            leaf_ratio: 0.7,
        });
        snap.calibration = Some(QErrorReport {
            evaluated: 10,
            mean: 1.1,
            median: 1.0,
            p95: 2.0,
            max: 3.0,
        });
        let bytes = snap.encode().unwrap().to_vec();
        // Re-derive the section layout from the (trusted) header.
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        assert_eq!(count, 5, "config, dataset, estimator, calibration, engine");
        let header_len = 12 + count * 24;
        for entry in 0..count {
            let at = 12 + entry * 24;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            assert!(len > 0, "section {id} is empty");
            let mut corrupt = bytes.clone();
            corrupt[header_len + offset + len / 2] ^= 0x01;
            let err = Snapshot::decode(&corrupt).unwrap_err().to_string();
            let name = section_name(id);
            assert!(
                err.contains(&format!("section `{name}`")) && err.contains("checksum mismatch"),
                "flip inside section {id} produced: {err}"
            );
        }
    }

    #[test]
    fn unsupported_version_is_rejected_with_a_clear_error() {
        let snap = trained_snapshot();
        let sections = raw_sections(&snap);
        let refs: Vec<(u32, &[u8])> = sections.iter().map(|(i, b)| (*i, b.as_slice())).collect();
        let bytes = build_raw(99, &refs);
        let err = Snapshot::decode(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("version 99"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn truncated_and_oversized_inputs_are_rejected() {
        let snap = trained_snapshot();
        for bytes in [snap.encode().unwrap(), snap.encode_v1().unwrap()] {
            assert!(Snapshot::decode(&bytes[..8]).is_err());
            let mut extended = bytes.to_vec();
            extended.extend_from_slice(&[0u8; 16]);
            assert!(Snapshot::decode(&extended).is_err());
        }
        assert!(Snapshot::decode(&[]).is_err());
    }

    #[test]
    fn unknown_sections_are_ignored_for_forward_compat() {
        // Append an extra section id 999 in both format versions: a
        // same-version reader must skip it and load the rest normally.
        let snap = trained_snapshot();
        let sections = raw_sections(&snap);
        let mystery = b"from-the-future".to_vec();
        let mut refs: Vec<(u32, &[u8])> =
            sections.iter().map(|(i, b)| (*i, b.as_slice())).collect();
        refs.push((999, &mystery));
        for version in [1, 2, 3] {
            let bytes = build_raw(version, &refs);
            let back = Snapshot::decode(&bytes).unwrap();
            assert_eq!(back.config, snap.config, "version {version}");
            assert_eq!(back.data, snap.data, "version {version}");
        }
    }

    #[test]
    fn missing_required_section_is_named_in_the_error() {
        // Rebuild with only config + dataset: the estimator must be reported.
        let snap = trained_snapshot();
        let sections = raw_sections(&snap);
        let refs: Vec<(u32, &[u8])> = sections
            .iter()
            .filter(|(id, _)| *id != SECTION_ESTIMATOR)
            .map(|(i, b)| (*i, b.as_slice()))
            .collect();
        for version in [1, 2, 3] {
            let bytes = build_raw(version, &refs);
            let err = Snapshot::decode(&bytes).unwrap_err();
            assert!(
                err.to_string().contains("estimator"),
                "version {version}: unexpected error: {err}"
            );
        }
    }

    #[test]
    fn engine_config_mismatch_is_rejected() {
        // An engine section whose kind disagrees with the config's engine
        // choice is a malformed snapshot, not a silent fallback.
        let mut snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        snap.config.engine = EngineChoice::Linear;
        let err = Snapshot::decode(&snap.encode().unwrap()).unwrap_err();
        assert!(err.to_string().contains("grid"), "unexpected error: {err}");
    }

    #[test]
    fn engine_dataset_mismatch_is_rejected() {
        // A structurally valid engine section persisted over a *different*
        // dataset must fail validation instead of serving wrong neighbors.
        let snap = snapshot_with_engine(EngineChoice::Ivf {
            nlist: 4,
            nprobe: 2,
        });
        let (other, _) = EmbeddingMixtureConfig {
            n_points: 40,
            dim: 6,
            clusters: 2,
            seed: 5,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let mismatched = Snapshot {
            data: other,
            ..snap
        };
        // Retrain-free estimator/dataset dim both 6, so only the engine
        // coverage check can object.
        let err = Snapshot::decode(&mismatched.encode().unwrap()).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Engine(_)),
            "unexpected error: {err}"
        );
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("laf_core_snapshot_v3_test");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    #[test]
    fn encode_writes_version_3_with_eight_byte_aligned_sections() {
        let mut snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        snap.calibration = Some(QErrorReport {
            evaluated: 5,
            mean: 1.2,
            median: 1.1,
            p95: 2.5,
            max: 4.0,
        });
        let bytes = snap.encode().unwrap();
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            3,
            "encode must write format version 3"
        );
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        assert_eq!(count, 5);
        let header_len = 12 + count * 24;
        for entry in 0..count {
            let at = 12 + entry * 24;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            assert_eq!(
                (header_len + offset) % SECTION_ALIGN,
                0,
                "section {id} body must start at an 8-byte-aligned file offset"
            );
        }
        // The padded layout still round-trips bit-exactly.
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.data, snap.data);
        assert_eq!(back.calibration, snap.calibration);
        assert_eq!(back.engine, snap.engine);
    }

    #[test]
    fn v2_snapshots_still_load_with_their_engine() {
        let snap = snapshot_with_engine(EngineChoice::Ivf {
            nlist: 4,
            nprobe: 2,
        });
        let bytes = snap.encode_v2().unwrap();
        assert_eq!(bytes[4], 2, "encode_v2 must write format version 2");
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.data, snap.data);
        assert_eq!(back.engine, snap.engine);
    }

    #[test]
    fn save_streams_bytes_identical_to_encode() {
        // encode_to_writer is the single writer; save must stream exactly
        // the bytes encode() materializes.
        let snap = snapshot_with_engine(EngineChoice::KMeansTree {
            branching: 3,
            leaf_ratio: 0.7,
        });
        let path = temp_path("stream.lafs");
        snap.save(&path).unwrap();
        let on_disk = fs::read(&path).unwrap();
        assert_eq!(on_disk, snap.encode().unwrap().to_vec());
        fs::remove_file(path).ok();
    }

    #[test]
    fn open_mmap_serves_the_dataset_in_place() {
        let snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        let path = temp_path("mapped.lafs");
        snap.save(&path).unwrap();
        let mapped = Snapshot::open_mmap(&path).unwrap();
        assert!(
            cfg!(target_endian = "big") || mapped.data.is_mapped(),
            "a v3 file written by save() must load zero-copy"
        );
        assert_eq!(mapped.data, snap.data);
        assert_eq!(mapped.config, snap.config);
        assert_eq!(mapped.engine, snap.engine);
        // The copying loader agrees with the mapped one bit for bit.
        let copied = Snapshot::load(&path).unwrap();
        assert!(!copied.data.is_mapped());
        assert_eq!(copied.data, mapped.data);
        fs::remove_file(path).ok();
    }

    #[test]
    fn open_mmap_on_v1_and_v2_files_falls_back_to_copying() {
        let snap = trained_snapshot();
        for (version, bytes) in [
            (1u32, snap.encode_v1().unwrap()),
            (2u32, snap.encode_v2().unwrap()),
        ] {
            let path = temp_path(&format!("legacy_v{version}.lafs"));
            fs::write(&path, &bytes).unwrap();
            let back = Snapshot::open_mmap(&path).unwrap();
            assert!(
                !back.data.is_mapped(),
                "v{version} files must load through the copying path"
            );
            assert_eq!(back.data, snap.data, "version {version}");
            fs::remove_file(path).ok();
        }
    }

    #[test]
    fn misaligned_v3_dataset_falls_back_to_an_owned_copy() {
        // Hand-craft a v3 file that violates the writer's alignment rule: a
        // filler section sized so the dataset's f32 payload lands on an odd
        // file offset. The loader must transparently copy instead of
        // reinterpreting, with byte-identical contents.
        let snap = trained_snapshot();
        let sections = raw_sections(&snap);
        let config = &sections[0];
        assert_eq!(config.0, SECTION_CONFIG);
        let header_len = 12 + 4 * 24;
        let mut filler_len = 1usize;
        while (header_len + config.1.len() + filler_len + 20).is_multiple_of(4) {
            filler_len += 1;
        }
        let filler = vec![0xABu8; filler_len];
        let refs: Vec<(u32, &[u8])> = vec![
            (sections[0].0, sections[0].1.as_slice()),
            (999, filler.as_slice()),
            (sections[1].0, sections[1].1.as_slice()),
            (sections[2].0, sections[2].1.as_slice()),
        ];
        assert_eq!(refs[2].0, SECTION_DATASET);
        let bytes = build_raw(3, &refs);
        let path = temp_path("misaligned_v3.lafs");
        fs::write(&path, &bytes).unwrap();
        let back = Snapshot::open_mmap(&path).unwrap();
        assert!(
            !back.data.is_mapped(),
            "misaligned payload must not be reinterpreted"
        );
        assert_eq!(back.data, snap.data, "fallback copy must be byte-identical");
        fs::remove_file(path).ok();
    }

    #[test]
    fn nonzero_padding_is_rejected_in_v3() {
        // The alignment padding is the only part of a v3 file no CRC covers;
        // the zero rule keeps "every corrupted byte is detected" true.
        let snap = trained_snapshot();
        let bytes = snap.encode().unwrap().to_vec();
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let header_len = 12 + count * 24;
        // header_len = 12 + 24·count ≡ 4 (mod 8), so the first section is
        // always preceded by exactly 4 padding bytes.
        let first_offset = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        assert_eq!(first_offset, 4, "expected 4 bytes of leading padding");
        let mut corrupt = bytes.clone();
        corrupt[header_len] = 0x5A;
        let err = Snapshot::decode(&corrupt).unwrap_err().to_string();
        assert!(err.contains("padding"), "unexpected error: {err}");
    }

    #[test]
    fn file_round_trip() {
        let snap = trained_snapshot();
        let dir = std::env::temp_dir().join("laf_core_snapshot_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.lafs");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back.data, snap.data);
        fs::remove_file(path).ok();
        assert!(matches!(
            Snapshot::load("/nonexistent/nope.lafs"),
            Err(SnapshotError::Io(_))
        ));
    }
}
