//! Versioned, checksummed binary snapshots — the boundary between the
//! offline training plane and the online serving plane.
//!
//! The paper's premise is *train once, serve many*: the cardinality estimator
//! is fitted offline and then amortized across clustering runs. A
//! [`Snapshot`] persists everything a serving process needs to rebuild the
//! exact training-time pipeline:
//!
//! * the [`LafConfig`] (ε, τ, α, metric and the [`laf_index::EngineChoice`]
//!   needed to rebuild the range-query engine),
//! * the [`Dataset`] (flat-buffer encoded via [`laf_vector::io`]),
//! * the trained [`MlpEstimator`] (raw IEEE-754 weight bits via
//!   [`MlpEstimator::encode_binary`] — **bit-exact**, not a text round-trip),
//! * optionally a [`QErrorReport`] calibration summary captured at train
//!   time,
//! * optionally (format v2) the **built range-query engine structure**
//!   ([`laf_index::PersistedEngine`]: grid cells, k-means tree nodes, IVF
//!   posting lists), so a warm start restores the engine instead of paying
//!   the bucketing / k-means construction cost again.
//!
//! # Wire format
//!
//! All integers little-endian. **Version 4** (current writer):
//!
//! ```text
//! magic              4 bytes   b"LAFS"
//! format version     u32       4
//! section count      u32
//! section table      count x { id: u32, offset: u64, len: u64, crc: u32 }
//!                              (offsets relative to the payload start; `crc`
//!                               is CRC-32 (IEEE) over that section's body)
//! payload            section bodies, each padded with leading zero bytes so
//!                              its absolute file offset is a multiple of 8
//! header checksum    u32       CRC-32 (IEEE) over every byte before the
//!                              payload (magic, version, count, table)
//! ```
//!
//! Version 4 adds **sharding** on top of version 3's container. An
//! unsharded snapshot keeps the classic sections (config, dataset,
//! estimator, optional calibration, optional engine — see [`section_id`]).
//! A sharded snapshot ([`Snapshot::shards`] non-empty) replaces the global
//! dataset and engine sections with a [`section_id::SHARD_MANIFEST`]
//! (shard count + per-shard row counts) and one dataset section per shard
//! ([`section_id::shard_dataset`]) plus, when the engine choice is
//! persistable, one engine section per shard
//! ([`section_id::shard_engine`]). Shard slices cover the dataset in global
//! row order, so the decoder rebuilds the full dataset by concatenation —
//! and `laf_index::ShardedEngine` answers queries over the restored
//! per-shard structures bit-identically to the unsharded path.
//!
//! **Version 3** (still read; [`Snapshot::encode_v3`] exists for
//! compatibility tests) is the same container without shard sections. It
//! differs from version 2 in exactly one rule: **every section
//! body starts at an 8-byte-aligned file offset** (the writer inserts zero
//! padding before a section as needed, and the reader rejects nonzero
//! padding so every byte of the file stays covered by a check). Alignment is
//! what makes zero-copy warm starts possible: a memory-mapped v3 file places
//! the dataset section's `f32` payload at a 4-byte-aligned address, so
//! [`Snapshot::open_mmap`] can serve it **in place** (see
//! [`laf_vector::mapped`]) instead of copying it into a fresh `Vec<f32>` —
//! warm-start cost becomes O(index-restore) instead of O(dataset), and all
//! serving processes mapping one snapshot share one set of page-cache pages.
//! Since the writer is also streaming ([`Snapshot::encode_to_writer`]), the
//! encoded snapshot never needs to be assembled in memory on either side.
//!
//! **Version 2** (still read; [`Snapshot::encode_v2`] exists for
//! compatibility tests) is the same layout without the alignment rule. The
//! per-section CRC table is what v2 bought besides the engine section: a
//! flipped byte is reported as *"section `estimator` (id 3) checksum
//! mismatch"* instead of one opaque whole-file failure, so operators know
//! which artifact to regenerate.
//!
//! **Version 1** (still read, no longer written;
//! [`Snapshot::encode_v1`] exists for compatibility fixtures):
//!
//! ```text
//! magic / version / count      as above, version 1
//! section table      count x { id: u32, offset: u64, len: u64 }
//! payload            concatenated section bodies
//! checksum           u32       CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! Compatibility rules: a reader **rejects** an unknown format version or any
//! checksum mismatch, **ignores** unknown section ids (so a newer writer may
//! append sections without breaking older readers), and **requires** the
//! config and estimator sections plus either the dataset section or a shard
//! manifest with every shard-dataset section it declares. Engine sections
//! are optional in both directions: a v1 snapshot (or a newer snapshot
//! whose engine was not persistable) simply rebuilds the engine from the
//! restored [`laf_index::EngineChoice`] — the v1 serving behaviour. Loading
//! a v1/v2 file through [`Snapshot::open_mmap`] works but copies the
//! dataset (their writers guaranteed no alignment), as does a v3+/v4 file
//! whose dataset section is misaligned or a big-endian host: the zero-copy
//! reinterpret is an optimization, never a compatibility cliff.

use crate::config::LafConfig;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use laf_cardest::{MlpEstimator, QErrorReport};
use laf_index::{PersistError, PersistedEngine};
use laf_vector::fault;
use laf_vector::mapped::{self, Mmap};
use laf_vector::{io as vio, Dataset, VectorError};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes identifying a LAF snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"LAFS";
/// Current snapshot format version (what [`Snapshot::encode`] writes).
pub const SNAPSHOT_VERSION: u32 = 4;
/// Oldest snapshot format version this reader still accepts.
pub const SNAPSHOT_MIN_VERSION: u32 = 1;
/// Alignment (in bytes, relative to the file start) every section body is
/// padded to since format v3, so a mapped dataset section can be
/// reinterpreted as `&[f32]` in place.
pub const SECTION_ALIGN: usize = 8;

/// The single registry of snapshot section ids.
///
/// Every writer, the decoder and the corruption-error formatter share these
/// constants and the [`name`](section_id::name) helper, so a section can
/// never be written under one id and reported under another name.
pub mod section_id {
    /// JSON-encoded [`crate::LafConfig`] (JSON inside the binary container
    /// so configuration fields can evolve under serde's defaulting rules
    /// without a format-version bump).
    pub const CONFIG: u32 = 1;
    /// Flat-buffer encoded [`laf_vector::Dataset`] (`laf_vector::io`
    /// format). Absent from sharded (v4 manifest) files, whose rows live in
    /// the per-shard dataset sections instead.
    pub const DATASET: u32 = 2;
    /// Binary `MlpEstimator` (raw weight bits).
    pub const ESTIMATOR: u32 = 3;
    /// JSON-encoded `QErrorReport` calibration summary (optional).
    pub const CALIBRATION: u32 = 4;
    /// Binary built engine structure (`laf_index::persist` format,
    /// optional, v2+, unsharded files only).
    pub const ENGINE: u32 = 5;
    /// Sharded-layout manifest (v4): shard count (`u32`) followed by one
    /// `u64` row count per shard, in shard order. Presence of this section
    /// is what makes a v4 file sharded.
    pub const SHARD_MANIFEST: u32 = 6;
    /// First shard-dataset section id; shard `i`'s dataset slice is stored
    /// under [`shard_dataset`]`(i)` in `laf_vector::io` format.
    pub const SHARD_DATASET_BASE: u32 = 0x1000;
    /// First shard-engine section id; shard `i`'s persisted engine
    /// structure (optional per shard) is stored under [`shard_engine`]`(i)`.
    pub const SHARD_ENGINE_BASE: u32 = 0x2000;
    /// Maximum number of shards one snapshot may carry: keeps the shard id
    /// ranges disjoint and bounds the decoder's manifest-driven work.
    pub const MAX_SHARDS: u32 = SHARD_ENGINE_BASE - SHARD_DATASET_BASE;

    /// Section id of shard `i`'s dataset slice.
    pub fn shard_dataset(i: u32) -> u32 {
        debug_assert!(i < MAX_SHARDS);
        SHARD_DATASET_BASE + i
    }

    /// Section id of shard `i`'s persisted engine structure.
    pub fn shard_engine(i: u32) -> u32 {
        debug_assert!(i < MAX_SHARDS);
        SHARD_ENGINE_BASE + i
    }

    /// Human-readable name of a section id, shared by corruption errors and
    /// the decoders.
    pub fn name(id: u32) -> &'static str {
        match id {
            CONFIG => "config",
            DATASET => "dataset",
            ESTIMATOR => "estimator",
            CALIBRATION => "calibration",
            ENGINE => "engine",
            SHARD_MANIFEST => "shard-manifest",
            id if (SHARD_DATASET_BASE..SHARD_DATASET_BASE + MAX_SHARDS).contains(&id) => {
                "shard-dataset"
            }
            id if (SHARD_ENGINE_BASE..SHARD_ENGINE_BASE + MAX_SHARDS).contains(&id) => {
                "shard-engine"
            }
            _ => "unknown",
        }
    }
}

/// Errors produced while encoding, decoding or (de)serializing snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// Structural problem in the snapshot bytes (bad magic, unsupported
    /// version, checksum mismatch, a section spilling past the payload,
    /// missing required sections). Overlapping or duplicate-id sections are
    /// *not* rejected: each lookup bounds-checks independently and the first
    /// table entry with a matching id wins.
    Malformed(String),
    /// A section body failed to decode (dataset payload, estimator weights).
    Vector(VectorError),
    /// The engine section failed to decode or is inconsistent with the
    /// dataset/config it was persisted alongside.
    Engine(PersistError),
    /// A JSON section failed to (de)serialize.
    Json(serde_json::Error),
    /// Filesystem failure during load/save.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapshotError::Vector(e) => write!(f, "snapshot section error: {e}"),
            SnapshotError::Engine(e) => write!(f, "snapshot engine section error: {e}"),
            SnapshotError::Json(e) => write!(f, "snapshot JSON section error: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Vector(e) => Some(e),
            SnapshotError::Engine(e) => Some(e),
            SnapshotError::Json(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Malformed(_) => None,
        }
    }
}

impl From<VectorError> for SnapshotError {
    fn from(e: VectorError) -> Self {
        SnapshotError::Vector(e)
    }
}

impl From<PersistError> for SnapshotError {
    fn from(e: PersistError) -> Self {
        SnapshotError::Engine(e)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Json(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Slicing-by-8 CRC-32 (IEEE 802.3, reflected) lookup tables, built at
/// compile time. `CRC32_TABLES[0]` is the classic byte-at-a-time table;
/// table `k` maps a byte to its CRC contribution from `k` positions deeper
/// in the message, letting [`Crc32::update`] fold 8 input bytes per step.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            j += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Incremental CRC-32 (IEEE 802.3 polynomial, reflected).
///
/// Slicing-by-8 rather than bitwise: since format v3 the section checksums
/// are the *dominant* cost of an mmap warm start (the dataset itself is
/// served in place, so the CRC pass is the only O(dataset) work left), and
/// the streaming writer checksums the dataset section chunk by chunk without
/// materializing it — both want the many-times-cheaper per-byte step.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feed `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = &CRC32_TABLES;
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][c[4] as usize]
                ^ t[2][c[5] as usize]
                ^ t[1][c[6] as usize]
                ^ t[0][c[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum value.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finalize()
}

/// A parsed section table — `(id, offset, len)` entries with offsets into
/// the second element, the payload slice.
type ParsedSections<'a> = (Vec<(u32, usize, usize)>, &'a [u8]);

/// A section dropped by a degraded parse: `(id, stored_crc, computed_crc)`.
type DroppedSection = (u32, u32, u32);

/// One section a degraded load ([`Snapshot::decode_degraded`] and friends)
/// could not serve from the file and compensated for instead of failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradedSection {
    /// The global engine section (id 5) was corrupt; the engine was rebuilt
    /// from the dataset. Rebuilt structures are deterministic functions of
    /// the dataset and config, so answers are byte-identical to a clean
    /// load's.
    Engine,
    /// Shard `i`'s engine section (id `0x2000 + i`) was corrupt; that
    /// shard's engine was rebuilt from its dataset slice.
    ShardEngine(u32),
    /// The estimator section was corrupt; a gate-off constant estimator was
    /// substituted ([`MlpEstimator::gate_off`]), so the pipeline serves
    /// exact-only — correct answers, none of the learned speedup.
    Estimator,
    /// The calibration summary was corrupt and dropped (it is advisory).
    Calibration,
}

impl fmt::Display for DegradedSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedSection::Engine => write!(f, "engine (rebuilt from dataset)"),
            DegradedSection::ShardEngine(i) => {
                write!(f, "shard-engine {i} (rebuilt from shard dataset)")
            }
            DegradedSection::Estimator => write!(f, "estimator (serving gate-off exact-only)"),
            DegradedSection::Calibration => write!(f, "calibration (dropped)"),
        }
    }
}

/// Report of a degraded snapshot load: which sections failed their CRC and
/// what the loader substituted. Empty means the load was clean.
///
/// Only *derived* sections degrade — engines (rebuildable from the dataset),
/// the estimator (replaceable by a gate-off constant) and the advisory
/// calibration summary. Corruption in a structural section (config, dataset,
/// shard manifest, shard dataset) still fails the load: there is nothing
/// correct to substitute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedLoad {
    /// The degraded sections, in section-table order.
    pub sections: Vec<DegradedSection>,
}

impl DegradedLoad {
    /// Whether every section verified and decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.sections.is_empty()
    }
}

impl fmt::Display for DegradedLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sections.is_empty() {
            return write!(f, "clean load");
        }
        write!(f, "degraded load: ")?;
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Everything a serving process needs to rebuild a trained LAF pipeline.
///
/// See the [module documentation](self) for the wire format. Snapshots are
/// usually handled through [`crate::LafPipeline`]; the raw type is exposed
/// for tooling that inspects or rewrites snapshot files.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The configuration the pipeline was trained under, including the
    /// engine choice used to rebuild the range-query index at load time.
    pub config: LafConfig,
    /// The indexed dataset.
    pub data: Dataset,
    /// The trained estimator (bit-exact across save/load).
    pub estimator: MlpEstimator,
    /// Calibration summary captured at training time, when requested.
    pub calibration: Option<QErrorReport>,
    /// The built range-query engine structure, when the engine choice is
    /// persistable (see [`laf_index::EngineChoice::persistable`]). `None` for
    /// v1 snapshots and non-persistable engines; the serving side then
    /// rebuilds from [`LafConfig::engine`].
    ///
    /// Always `None` for sharded snapshots, whose engine structures live per
    /// shard in [`Snapshot::shards`].
    pub engine: Option<PersistedEngine>,
    /// Shard layout of a sharded (format v4) snapshot, in shard order.
    ///
    /// Empty means unsharded — the classic single-dataset layout. When
    /// non-empty (two shards or more), [`Snapshot::data`] still holds the
    /// full logical dataset and each entry's
    /// [`data`](SnapshotShard::data) is that shard's contiguous row slice —
    /// after a decode the owned slices are zero-copy views into the very
    /// allocation behind [`Snapshot::data`], and mapped slices are served in
    /// place from the file mapping.
    pub shards: Vec<SnapshotShard>,
}

/// One shard of a sharded (format v4) snapshot: the dataset slice plus,
/// when the engine choice is persistable, the engine structure built over
/// exactly those rows. Row ids inside the persisted structure are
/// shard-local; `laf_index::ShardedEngine` rebases them at query time.
#[derive(Debug, Clone)]
pub struct SnapshotShard {
    /// This shard's contiguous slice of the dataset, in global row order.
    pub data: Dataset,
    /// The engine structure persisted over this shard's rows, when the
    /// configured engine choice is persistable.
    pub engine: Option<PersistedEngine>,
}

impl Snapshot {
    /// The section bodies shared by both format versions, in payload order.
    fn common_sections(&self) -> Result<Vec<(u32, Vec<u8>)>, SnapshotError> {
        let config_json = serde_json::to_string(&self.config)?;
        let calibration_json = self
            .calibration
            .as_ref()
            .map(serde_json::to_string)
            .transpose()?;

        let mut estimator_bytes: Vec<u8> = Vec::new();
        self.estimator.encode_binary(&mut estimator_bytes);

        let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(5);
        sections.push((section_id::CONFIG, config_json.into_bytes()));
        let mut dataset_bytes: Vec<u8> = Vec::with_capacity(vio::encoded_len(&self.data));
        vio::encode_into(&self.data, &mut dataset_bytes);
        sections.push((section_id::DATASET, dataset_bytes));
        sections.push((section_id::ESTIMATOR, estimator_bytes));
        if let Some(json) = calibration_json {
            sections.push((section_id::CALIBRATION, json.into_bytes()));
        }
        Ok(sections)
    }

    /// Encode into the current (version-4) snapshot format: per-section CRC
    /// table and 8-byte-aligned section bodies. An unsharded snapshot keeps
    /// the classic single-dataset section layout (now under version 4); a
    /// sharded one writes the shard manifest plus per-shard dataset and
    /// engine sections. Equivalent to [`Snapshot::encode_to_writer`] into a
    /// fresh buffer.
    pub fn encode(&self) -> Result<Bytes, SnapshotError> {
        let mut buf: Vec<u8> = Vec::new();
        self.encode_to_writer(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    /// Encode into the legacy version-3 format (classic single-dataset
    /// layout, alignment padding). Exists so compatibility tests can pin the
    /// v3 read path; errors on a sharded snapshot, which needs format v4.
    pub fn encode_v3(&self) -> Result<Bytes, SnapshotError> {
        let mut buf: Vec<u8> = Vec::new();
        self.encode_to_writer_versioned(&mut buf, 3)?;
        Ok(Bytes::from(buf))
    }

    /// Stream the version-4 encoding into `writer` without ever assembling
    /// the whole snapshot in memory.
    ///
    /// The small sections (config, estimator, calibration, engines, shard
    /// manifest) are materialized — they are KBs — but every dataset
    /// section, which is where the bytes are, is checksummed and written in
    /// bounded chunks via [`laf_vector::io::encode_chunked`]. Peak
    /// writer-side memory is O(small sections + one chunk) instead of
    /// O(snapshot), roughly halving train-time peak RSS for large datasets
    /// (the old path held the dataset *and* its full encoding alive
    /// simultaneously).
    ///
    /// # Errors
    /// Propagates section serialization failures and writer I/O errors, and
    /// rejects an inconsistent shard layout (shard rows not summing to the
    /// dataset, a shard with a different dimensionality, a global engine on
    /// a sharded snapshot). Callers handing in a buffered writer should
    /// flush it afterwards (the [`Snapshot::save`] convenience does).
    pub fn encode_to_writer<W: Write>(&self, writer: &mut W) -> Result<(), SnapshotError> {
        self.encode_to_writer_versioned(writer, SNAPSHOT_VERSION)
    }

    /// `(len, crc)` of a dataset section without materializing its encoding:
    /// a CRC pre-pass over the same bounded chunks the writer streams later.
    fn dataset_entry(data: &Dataset) -> (u64, u32) {
        let mut crc = Crc32::new();
        let mut len = 0u64;
        let _ = vio::encode_chunked::<std::convert::Infallible>(data, |chunk| {
            crc.update(chunk);
            len += chunk.len() as u64;
            Ok(())
        });
        debug_assert_eq!(len as usize, vio::encoded_len(data));
        (len, crc.finalize())
    }

    fn encode_to_writer_versioned<W: Write>(
        &self,
        writer: &mut W,
        version: u32,
    ) -> Result<(), SnapshotError> {
        let sharded = !self.shards.is_empty();
        if sharded && version < 4 {
            return Err(SnapshotError::Malformed(format!(
                "sharded snapshots require format version 4, not {version}"
            )));
        }
        if self.shards.len() > section_id::MAX_SHARDS as usize {
            return Err(SnapshotError::Malformed(format!(
                "{} shards exceed the format limit of {}",
                self.shards.len(),
                section_id::MAX_SHARDS
            )));
        }
        if sharded {
            if self.engine.is_some() {
                return Err(SnapshotError::Malformed(
                    "sharded snapshots persist engine structures per shard, not globally".into(),
                ));
            }
            let total: usize = self.shards.iter().map(|s| s.data.len()).sum();
            if total != self.data.len() {
                return Err(SnapshotError::Malformed(format!(
                    "shard row counts sum to {total} but the dataset holds {} rows",
                    self.data.len()
                )));
            }
            if let Some(s) = self.shards.iter().find(|s| s.data.dim() != self.data.dim()) {
                return Err(SnapshotError::Malformed(format!(
                    "shard dimensionality {} disagrees with the dataset's {}",
                    s.data.dim(),
                    self.data.dim()
                )));
            }
        }

        // Section bodies: `Dataset` bodies are streamed, never materialized.
        enum Body<'a> {
            Bytes(Vec<u8>),
            Dataset(&'a Dataset),
        }
        let config_json = serde_json::to_string(&self.config)?;
        let mut estimator_bytes: Vec<u8> = Vec::new();
        self.estimator.encode_binary(&mut estimator_bytes);
        let calibration_json = self
            .calibration
            .as_ref()
            .map(serde_json::to_string)
            .transpose()?;

        let mut sections: Vec<(u32, u64, u32, Body<'_>)> =
            Vec::with_capacity(5 + 2 * self.shards.len());
        let push_bytes = |sections: &mut Vec<(u32, u64, u32, Body<'_>)>, id: u32, body: Vec<u8>| {
            sections.push((id, body.len() as u64, crc32(&body), Body::Bytes(body)));
        };
        push_bytes(&mut sections, section_id::CONFIG, config_json.into_bytes());
        if !sharded {
            let (len, crc) = Self::dataset_entry(&self.data);
            sections.push((section_id::DATASET, len, crc, Body::Dataset(&self.data)));
        }
        push_bytes(&mut sections, section_id::ESTIMATOR, estimator_bytes);
        if let Some(json) = calibration_json {
            push_bytes(&mut sections, section_id::CALIBRATION, json.into_bytes());
        }
        if !sharded {
            if let Some(engine) = &self.engine {
                push_bytes(&mut sections, section_id::ENGINE, engine.encode());
            }
        } else {
            let mut manifest: Vec<u8> = Vec::with_capacity(4 + 8 * self.shards.len());
            manifest.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
            for shard in &self.shards {
                manifest.extend_from_slice(&(shard.data.len() as u64).to_le_bytes());
            }
            push_bytes(&mut sections, section_id::SHARD_MANIFEST, manifest);
            for (i, shard) in self.shards.iter().enumerate() {
                let (len, crc) = Self::dataset_entry(&shard.data);
                sections.push((
                    section_id::shard_dataset(i as u32),
                    len,
                    crc,
                    Body::Dataset(&shard.data),
                ));
                if let Some(engine) = &shard.engine {
                    push_bytes(
                        &mut sections,
                        section_id::shard_engine(i as u32),
                        engine.encode(),
                    );
                }
            }
        }

        // Lay out the payload: each section body starts at a file offset
        // that is a multiple of SECTION_ALIGN, with zero padding in between.
        let header_len = 12 + sections.len() * 24;
        let mut header: Vec<u8> = Vec::with_capacity(header_len);
        header.extend_from_slice(SNAPSHOT_MAGIC);
        header.extend_from_slice(&version.to_le_bytes());
        header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        let mut pads: Vec<usize> = Vec::with_capacity(sections.len());
        let mut offset = 0u64;
        for (id, len, crc, _) in &sections {
            let absolute = header_len as u64 + offset;
            let pad =
                (SECTION_ALIGN as u64 - absolute % SECTION_ALIGN as u64) % SECTION_ALIGN as u64;
            pads.push(pad as usize);
            offset += pad;
            header.extend_from_slice(&id.to_le_bytes());
            header.extend_from_slice(&offset.to_le_bytes());
            header.extend_from_slice(&len.to_le_bytes());
            header.extend_from_slice(&crc.to_le_bytes());
            offset += len;
        }
        let header_crc = crc32(&header);

        writer.write_all(&header)?;
        const ZEROS: [u8; SECTION_ALIGN] = [0u8; SECTION_ALIGN];
        for ((_, _, _, body), pad) in sections.iter().zip(&pads) {
            writer.write_all(&ZEROS[..*pad])?;
            match body {
                Body::Bytes(bytes) => writer.write_all(bytes)?,
                Body::Dataset(data) => vio::encode_chunked(data, |chunk| writer.write_all(chunk))?,
            }
        }
        writer.write_all(&header_crc.to_le_bytes())?;
        Ok(())
    }

    /// Encode into the legacy version-2 format (same table layout as v3 but
    /// no alignment padding, assembled in memory). Exists so compatibility
    /// tests can exercise the v2 read path; new snapshots should use
    /// [`Snapshot::encode`].
    pub fn encode_v2(&self) -> Result<Bytes, SnapshotError> {
        let mut sections = self.common_sections()?;
        if let Some(engine) = &self.engine {
            sections.push((section_id::ENGINE, engine.encode()));
        }

        let table_len = sections.len() * 24;
        let payload_len: usize = sections.iter().map(|(_, b)| b.len()).sum();
        let mut buf = BytesMut::with_capacity(12 + table_len + payload_len + 4);
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(2);
        buf.put_u32_le(sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in &sections {
            buf.put_u32_le(*id);
            buf.put_u64_le(offset);
            buf.put_u64_le(body.len() as u64);
            buf.put_u32_le(crc32(body));
            offset += body.len() as u64;
        }
        let header_crc = crc32(&buf);
        for (_, body) in &sections {
            buf.put_slice(body);
        }
        buf.put_u32_le(header_crc);
        Ok(buf.freeze())
    }

    /// Encode into the legacy version-1 format (whole-file checksum, no
    /// engine section). Exists so compatibility fixtures — such as the
    /// committed golden snapshot CI loads through the v1 fallback path — can
    /// be regenerated; new snapshots should use [`Snapshot::encode`].
    pub fn encode_v1(&self) -> Result<Bytes, SnapshotError> {
        let sections = self.common_sections()?;
        let table_len = sections.len() * 20;
        let payload_len: usize = sections.iter().map(|(_, b)| b.len()).sum();
        let mut buf = BytesMut::with_capacity(12 + table_len + payload_len + 4);
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(1);
        buf.put_u32_le(sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in &sections {
            buf.put_u32_le(*id);
            buf.put_u64_le(offset);
            buf.put_u64_le(body.len() as u64);
            offset += body.len() as u64;
        }
        for (_, body) in &sections {
            buf.put_slice(body);
        }
        let checksum = crc32(&buf);
        buf.put_u32_le(checksum);
        Ok(buf.freeze())
    }

    /// Parse a version-1 header: verify the whole-file checksum, return the
    /// `(id, offset, len)` table and the payload slice.
    fn parse_v1(bytes: &[u8]) -> Result<ParsedSections<'_>, SnapshotError> {
        let (body, stored) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(stored.try_into().expect("4-byte split"));
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(SnapshotError::Malformed(format!(
                "checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
        let mut cursor: &[u8] = &body[8..]; // past magic + version
        let count = cursor.get_u32_le() as usize;
        if cursor.remaining() < count * 20 {
            return Err(SnapshotError::Malformed(format!(
                "section table for {count} sections exceeds the payload"
            )));
        }
        let mut table: Vec<(u32, usize, usize)> = Vec::with_capacity(count);
        for _ in 0..count {
            let id = cursor.get_u32_le();
            let offset = cursor.get_u64_le() as usize;
            let len = cursor.get_u64_le() as usize;
            table.push((id, offset, len));
        }
        Ok((table, cursor))
    }

    /// The error a failed section CRC produces, shared by the strict parse
    /// and the degraded-load policy (which re-raises it for structural
    /// sections), so both report corruption identically.
    fn mismatch_error(id: u32, stored: u32, computed: u32) -> SnapshotError {
        SnapshotError::Malformed(format!(
            "section `{}` (id {id}) checksum mismatch: stored {stored:#010x}, computed {computed:#010x}",
            section_id::name(id)
        ))
    }

    /// Parse a version-2/3 header: verify the header/table checksum, then
    /// verify **every** section's CRC (known or not) so corruption is
    /// reported by section name before any body is parsed. For version 3,
    /// additionally require every payload byte *outside* the listed sections
    /// (the alignment padding) to be zero, so no byte of the file escapes
    /// verification.
    ///
    /// With `dropped` set (the degraded-load path), a section failing its
    /// CRC is recorded there and excluded from the returned table instead of
    /// failing the parse — the caller decides which exclusions are
    /// survivable. Its bytes still count toward the padding-coverage spans,
    /// so the v3 "every byte is checked" rule keeps holding.
    fn parse_tabled<'a>(
        bytes: &'a [u8],
        version: u32,
        mut dropped: Option<&mut Vec<DroppedSection>>,
    ) -> Result<ParsedSections<'a>, SnapshotError> {
        let mut cursor: &[u8] = &bytes[8..];
        let count = cursor.get_u32_le() as usize;
        let header_len = 12 + count * 24;
        if bytes.len() < header_len + 4 {
            return Err(SnapshotError::Malformed(format!(
                "section table for {count} sections exceeds the file"
            )));
        }
        let stored = &bytes[bytes.len() - 4..];
        let stored_crc = u32::from_le_bytes(stored.try_into().expect("4-byte slice"));
        let actual_crc = crc32(&bytes[..header_len]);
        if stored_crc != actual_crc {
            return Err(SnapshotError::Malformed(format!(
                "header checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
        let payload = &bytes[header_len..bytes.len() - 4];
        let mut table: Vec<(u32, usize, usize)> = Vec::with_capacity(count);
        let mut spans: Vec<(usize, usize)> = Vec::with_capacity(count);
        for _ in 0..count {
            let id = cursor.get_u32_le();
            let offset = cursor.get_u64_le() as usize;
            let len = cursor.get_u64_le() as usize;
            let crc = cursor.get_u32_le();
            let end = offset.checked_add(len).ok_or_else(|| {
                SnapshotError::Malformed(format!(
                    "section `{}` (id {id}) length overflow",
                    section_id::name(id)
                ))
            })?;
            if end > payload.len() {
                return Err(SnapshotError::Malformed(format!(
                    "section `{}` (id {id}) spans {offset}..{end} but the payload holds {} bytes",
                    section_id::name(id),
                    payload.len()
                )));
            }
            spans.push((offset, end));
            let mut actual = crc32(&payload[offset..end]);
            // Failpoint `mmap.section.bitflip`: model a flipped bit in a
            // mapped section body by perturbing the *computed* CRC — the
            // injected corruption is therefore always detected here (and
            // handled exactly like real media corruption), never silently
            // served to a query.
            if fault::fire("mmap.section.bitflip") {
                actual = !actual;
            }
            if actual != crc {
                if let Some(list) = dropped.as_deref_mut() {
                    list.push((id, crc, actual));
                    continue;
                }
                return Err(Self::mismatch_error(id, crc, actual));
            }
            table.push((id, offset, len));
        }
        if version >= 3 {
            Self::check_padding(&spans, payload)?;
        }
        Ok((table, payload))
    }

    /// Verify that every payload byte not covered by a listed section is
    /// zero — format v3's padding rule. Keeps the "every corrupted byte is
    /// detected" property the per-section CRCs give the section bodies.
    fn check_padding(spans: &[(usize, usize)], payload: &[u8]) -> Result<(), SnapshotError> {
        let mut spans: Vec<(usize, usize)> = spans.to_vec();
        spans.sort_unstable();
        spans.push((payload.len(), payload.len()));
        let mut cursor = 0usize;
        for (start, end) in spans {
            if start > cursor {
                if let Some(i) = payload[cursor..start].iter().position(|&b| b != 0) {
                    return Err(SnapshotError::Malformed(format!(
                        "nonzero padding byte at payload offset {}",
                        cursor + i
                    )));
                }
            }
            cursor = cursor.max(end);
        }
        Ok(())
    }

    /// Decode a snapshot produced by [`Snapshot::encode`] (version 3) or an
    /// older writer (versions 1 and 2). The dataset is always copied into an
    /// owned buffer; use [`Snapshot::open_mmap`] / [`Snapshot::decode_mapped`]
    /// for the zero-copy path.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Malformed`] on any structural problem and the
    /// wrapped section error when a section body fails to decode. Checksums
    /// are verified **before** any section is parsed, so a corrupted file is
    /// rejected rather than half-loaded; since format v2 the failing section
    /// is named.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::decode_impl(bytes, None, None)
    }

    /// Decode like [`Snapshot::decode`], but *degrade* instead of failing
    /// when a derived section is corrupt: a corrupt engine section (global
    /// or per shard) is dropped so the caller rebuilds it from the dataset,
    /// a corrupt estimator section is replaced by a gate-off constant
    /// estimator ([`MlpEstimator::gate_off`], exact-only serving), and a
    /// corrupt calibration summary is dropped. Every substitution is listed
    /// in the returned [`DegradedLoad`] — degradation is typed and
    /// reported, never silent.
    ///
    /// # Errors
    /// Corruption in a structural section (config, dataset, shard manifest,
    /// shard dataset) and every structural problem [`Snapshot::decode`]
    /// rejects still fail: those have no correct substitute. Version-1
    /// files carry one whole-file checksum, so any corruption fails them.
    pub fn decode_degraded(bytes: &[u8]) -> Result<(Self, DegradedLoad), SnapshotError> {
        let mut report = DegradedLoad::default();
        let snap = Self::decode_impl(bytes, None, Some(&mut report))?;
        Ok((snap, report))
    }

    /// Decode a snapshot directly from a shared file mapping.
    ///
    /// Identical validation to [`Snapshot::decode`] — every checksum is
    /// verified once, against the mapping — but for a format-v3 file whose
    /// dataset section meets the alignment rule (every file the v3 writer
    /// produces does), the dataset is served **in place** from the mapping:
    /// no `Vec<f32>` allocation, no copy, page-cache pages shared with every
    /// other process mapping the same file. Misaligned v3 files, v1/v2
    /// files and big-endian hosts fall back to the copying path
    /// transparently.
    pub fn decode_mapped(map: &Arc<Mmap>) -> Result<Self, SnapshotError> {
        Self::decode_impl(&map[..], Some(map), None)
    }

    /// Degraded-mode twin of [`Snapshot::decode_mapped`]; see
    /// [`Snapshot::decode_degraded`] for the degradation policy.
    pub fn decode_mapped_degraded(map: &Arc<Mmap>) -> Result<(Self, DegradedLoad), SnapshotError> {
        let mut report = DegradedLoad::default();
        let snap = Self::decode_impl(&map[..], Some(map), Some(&mut report))?;
        Ok((snap, report))
    }

    fn decode_impl(
        bytes: &[u8],
        map: Option<&Arc<Mmap>>,
        degraded: Option<&mut DegradedLoad>,
    ) -> Result<Self, SnapshotError> {
        if bytes.len() < 16 {
            return Err(SnapshotError::Malformed(format!(
                "{} bytes is shorter than the fixed header",
                bytes.len()
            )));
        }
        let mut cursor: &[u8] = bytes;
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        if &magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Malformed(format!("bad magic {magic:?}")));
        }
        let version = cursor.get_u32_le();
        let mut dropped: Vec<DroppedSection> = Vec::new();
        let (table, payload) = match version {
            // v1 has one whole-file checksum: corruption cannot be pinned to
            // a section, so the degraded path has nothing finer to offer.
            1 => Self::parse_v1(bytes)?,
            2..=4 => Self::parse_tabled(
                bytes,
                version,
                if degraded.is_some() {
                    Some(&mut dropped)
                } else {
                    None
                },
            )?,
            _ => {
                return Err(SnapshotError::Malformed(format!(
                    "unsupported snapshot version {version} (this reader supports \
                     {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION})"
                )))
            }
        };

        // Degraded-load policy: derived sections degrade, structural
        // sections do not. The survivable exclusions are recorded on the
        // caller's report; anything else re-raises the strict parse's error.
        let mut estimator_dropped = false;
        if let Some(report) = degraded {
            for &(id, stored, computed) in &dropped {
                let section = match id {
                    section_id::ENGINE => DegradedSection::Engine,
                    section_id::ESTIMATOR => {
                        estimator_dropped = true;
                        DegradedSection::Estimator
                    }
                    section_id::CALIBRATION => DegradedSection::Calibration,
                    id if (section_id::SHARD_ENGINE_BASE
                        ..section_id::SHARD_ENGINE_BASE + section_id::MAX_SHARDS)
                        .contains(&id) =>
                    {
                        DegradedSection::ShardEngine(id - section_id::SHARD_ENGINE_BASE)
                    }
                    _ => return Err(Self::mismatch_error(id, stored, computed)),
                };
                report.sections.push(section);
            }
        }

        let section = |wanted: u32| -> Result<Option<&[u8]>, SnapshotError> {
            for &(id, offset, len) in &table {
                if id != wanted {
                    continue;
                }
                let end = offset.checked_add(len).ok_or_else(|| {
                    SnapshotError::Malformed(format!("section {id} length overflow"))
                })?;
                if end > payload.len() {
                    return Err(SnapshotError::Malformed(format!(
                        "section {id} spans {offset}..{end} but the payload holds {} bytes",
                        payload.len()
                    )));
                }
                return Ok(Some(&payload[offset..end]));
            }
            Ok(None)
        };
        let required = |wanted: u32, name: &str| -> Result<&[u8], SnapshotError> {
            section(wanted)?.ok_or_else(|| {
                SnapshotError::Malformed(format!("missing required section {name} (id {wanted})"))
            })
        };

        let config: LafConfig = serde_json::from_str(
            std::str::from_utf8(required(section_id::CONFIG, "config")?)
                .map_err(|e| SnapshotError::Malformed(format!("config is not UTF-8: {e}")))?,
        )?;
        let manifest = if version >= 4 {
            section(section_id::SHARD_MANIFEST)?
        } else {
            None
        };
        let (data, shards) = match manifest {
            Some(manifest) => {
                if section(section_id::DATASET)?.is_some() || section(section_id::ENGINE)?.is_some()
                {
                    return Err(SnapshotError::Malformed(
                        "sharded snapshot must not carry global dataset or engine sections".into(),
                    ));
                }
                let mut m = manifest;
                if m.len() < 4 {
                    return Err(SnapshotError::Malformed(
                        "shard manifest is shorter than its shard count".into(),
                    ));
                }
                let count = m.get_u32_le() as usize;
                if count == 0 || count > section_id::MAX_SHARDS as usize {
                    return Err(SnapshotError::Malformed(format!(
                        "shard manifest declares {count} shards (supported: 1..={})",
                        section_id::MAX_SHARDS
                    )));
                }
                if m.len() != count * 8 {
                    return Err(SnapshotError::Malformed(format!(
                        "shard manifest holds {} bytes of row counts for {count} shards",
                        m.len()
                    )));
                }
                let lens: Vec<usize> = (0..count).map(|_| m.get_u64_le() as usize).collect();
                let mut shard_datas: Vec<Dataset> = Vec::with_capacity(count);
                for (i, &rows) in lens.iter().enumerate() {
                    let sec = required(section_id::shard_dataset(i as u32), "shard-dataset")?;
                    let d = match map {
                        // Manifests exist only in v4+ files, whose writer
                        // guarantees section alignment, so every shard slice
                        // is eligible for the in-place reinterpret.
                        // `dataset_from_map` still re-checks the actual
                        // pointer and falls back to copying when a
                        // (hand-built) file is misaligned.
                        Some(map) => {
                            let offset = sec.as_ptr() as usize - bytes.as_ptr() as usize;
                            mapped::dataset_from_map(map, offset, sec.len())?
                        }
                        None => vio::decode(sec)?,
                    };
                    if d.len() != rows {
                        return Err(SnapshotError::Malformed(format!(
                            "shard {i} holds {} rows but the manifest declares {rows}",
                            d.len()
                        )));
                    }
                    if let Some(first) = shard_datas.first() {
                        if d.dim() != first.dim() {
                            return Err(SnapshotError::Malformed(format!(
                                "shard {i} is {}-dimensional but shard 0 is {}-dimensional",
                                d.dim(),
                                first.dim()
                            )));
                        }
                    }
                    shard_datas.push(d);
                }
                let dim = shard_datas[0].dim();
                let mut flat: Vec<f32> = Vec::with_capacity(lens.iter().sum::<usize>() * dim);
                for d in &shard_datas {
                    flat.extend_from_slice(d.as_flat());
                }
                let full = Dataset::from_flat(dim, flat)?;
                // Owned decodes drop the per-shard copies and re-slice views
                // of the concatenated buffer, so steady-state memory stays
                // 1× the dataset; mapped shards are already zero-copy and
                // keep their file-backed views (the concatenation is then
                // the only owned copy).
                let (full, shard_datas) = if shard_datas.iter().any(Dataset::is_mapped) {
                    (full, shard_datas)
                } else {
                    let shared = full.into_shared();
                    let mut views = Vec::with_capacity(count);
                    let mut start = 0usize;
                    for &rows in &lens {
                        views.push(shared.slice_rows(start, rows)?);
                        start += rows;
                    }
                    (shared, views)
                };
                let mut shards = Vec::with_capacity(count);
                for (i, d) in shard_datas.into_iter().enumerate() {
                    let engine = section(section_id::shard_engine(i as u32))?
                        .map(PersistedEngine::decode)
                        .transpose()?;
                    if let Some(engine) = &engine {
                        Self::validate_engine(engine, &config, d.len(), d.dim())?;
                    }
                    shards.push(SnapshotShard { data: d, engine });
                }
                (full, shards)
            }
            None => {
                let dataset_section = required(section_id::DATASET, "dataset")?;
                let data = match map {
                    // Zero-copy only for v3+: those writers are the ones
                    // that guarantee section alignment. `dataset_from_map`
                    // still re-checks the actual pointer and falls back to
                    // copying when a (hand-built) file is misaligned.
                    Some(map) if version >= 3 => {
                        let offset = dataset_section.as_ptr() as usize - bytes.as_ptr() as usize;
                        mapped::dataset_from_map(map, offset, dataset_section.len())?
                    }
                    _ => vio::decode(dataset_section)?,
                };
                (data, Vec::new())
            }
        };
        let estimator = match section(section_id::ESTIMATOR)? {
            Some(mut estimator_bytes) => {
                let estimator = MlpEstimator::decode_binary(&mut estimator_bytes)?;
                if !estimator_bytes.is_empty() {
                    return Err(SnapshotError::Malformed(format!(
                        "{} trailing bytes after the estimator section",
                        estimator_bytes.len()
                    )));
                }
                estimator
            }
            // The corrupt estimator section was excluded by the degraded
            // parse: serve gate-off exact-only rather than failing the load.
            None if estimator_dropped => MlpEstimator::gate_off(data.dim()),
            None => {
                return Err(SnapshotError::Malformed(format!(
                    "missing required section estimator (id {})",
                    section_id::ESTIMATOR
                )))
            }
        };
        if estimator.data_dim() != data.dim() {
            return Err(SnapshotError::Malformed(format!(
                "estimator expects {}-dimensional queries but the dataset is {}-dimensional",
                estimator.data_dim(),
                data.dim()
            )));
        }
        let calibration = section(section_id::CALIBRATION)?
            .map(|b| -> Result<QErrorReport, SnapshotError> {
                Ok(serde_json::from_str(std::str::from_utf8(b).map_err(
                    |e| SnapshotError::Malformed(format!("calibration is not UTF-8: {e}")),
                )?)?)
            })
            .transpose()?;
        let engine = section(section_id::ENGINE)?
            .map(PersistedEngine::decode)
            .transpose()?;
        if let Some(engine) = &engine {
            Self::validate_engine(engine, &config, data.len(), data.dim())?;
        }

        Ok(Self {
            config,
            data,
            estimator,
            calibration,
            engine,
            shards,
        })
    }

    /// Engine-section sanity checks shared by the global and per-shard
    /// paths: the persisted metric and structure kind must match the config,
    /// and the structure must cover exactly the rows it is restored over.
    fn validate_engine(
        engine: &PersistedEngine,
        config: &LafConfig,
        len: usize,
        dim: usize,
    ) -> Result<(), SnapshotError> {
        if engine.metric() != config.metric {
            return Err(SnapshotError::Malformed(format!(
                "engine section was persisted under {:?} but the config metric is {:?}",
                engine.metric(),
                config.metric
            )));
        }
        if !engine.matches_choice(&config.engine) {
            return Err(SnapshotError::Malformed(format!(
                "engine section holds a `{}` structure but the config engine is {:?}",
                engine.kind(),
                config.engine
            )));
        }
        engine.validate(len, dim)?;
        Ok(())
    }

    /// Write the encoded snapshot to `path`, streaming via
    /// [`Snapshot::encode_to_writer`] so the file is never assembled in
    /// memory.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        let file = fs::File::create(path)?;
        let mut writer = std::io::BufWriter::new(file);
        self.encode_to_writer(&mut writer)?;
        writer.flush()?;
        // Failpoint `snapshot.save.fsync`: crash with the full file in the
        // page cache but not on stable storage — callers sequencing
        // durability steps against this file must treat the save as failed.
        if fault::fire("snapshot.save.fsync") {
            return Err(fault::injected("snapshot.save.fsync").into());
        }
        // fsync so callers sequencing durability steps against this file
        // (compaction flips its manifest only once the new base is on disk)
        // get contents-on-stable-storage, not just contents-in-page-cache.
        writer.get_ref().sync_all()?;
        Ok(())
    }

    /// Read and decode a snapshot previously written with [`Snapshot::save`],
    /// copying the dataset into an owned buffer.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let bytes = fs::read(path)?;
        Self::decode(&bytes)
    }

    /// Degraded-mode twin of [`Snapshot::load`]; see
    /// [`Snapshot::decode_degraded`] for the degradation policy.
    pub fn load_degraded<P: AsRef<Path>>(path: P) -> Result<(Self, DegradedLoad), SnapshotError> {
        let bytes = fs::read(path)?;
        Self::decode_degraded(&bytes)
    }

    /// Validate the fixed header and section table of the snapshot at
    /// `path` without decoding (or CRC-checking) any section body: magic,
    /// supported version, header checksum, and every table entry in bounds.
    /// Cheap — O(table), not O(file) — for v2+ files, which is what lets a
    /// snapshot cache reject a damaged file at registration time instead of
    /// discovering it at first pin under load. (v1 files have only a
    /// whole-file checksum, so validating them costs one pass.)
    ///
    /// # Errors
    /// Returns [`SnapshotError`] naming the structural problem; I/O errors
    /// from opening/mapping the file pass through.
    pub fn validate_header<P: AsRef<Path>>(path: P) -> Result<(), SnapshotError> {
        let map = mapped::map_file(path)?;
        let bytes = &map[..];
        let version = Self::check_magic(bytes)?;
        match version {
            1 => {
                Self::parse_v1(bytes)?;
            }
            _ => {
                let mut cursor: &[u8] = &bytes[8..];
                let count = cursor.get_u32_le() as usize;
                let header_len = 12 + count * 24;
                if bytes.len() < header_len + 4 {
                    return Err(SnapshotError::Malformed(format!(
                        "section table for {count} sections exceeds the file"
                    )));
                }
                let stored = &bytes[bytes.len() - 4..];
                let stored_crc = u32::from_le_bytes(stored.try_into().expect("4-byte slice"));
                let actual_crc = crc32(&bytes[..header_len]);
                if stored_crc != actual_crc {
                    return Err(SnapshotError::Malformed(format!(
                        "header checksum mismatch: stored {stored_crc:#010x}, \
                         computed {actual_crc:#010x}"
                    )));
                }
                let payload_len = bytes.len() - header_len - 4;
                for _ in 0..count {
                    let id = cursor.get_u32_le();
                    let offset = cursor.get_u64_le() as usize;
                    let len = cursor.get_u64_le() as usize;
                    let _crc = cursor.get_u32_le();
                    let end = offset.checked_add(len).ok_or_else(|| {
                        SnapshotError::Malformed(format!(
                            "section `{}` (id {id}) length overflow",
                            section_id::name(id)
                        ))
                    })?;
                    if end > payload_len {
                        return Err(SnapshotError::Malformed(format!(
                            "section `{}` (id {id}) spans {offset}..{end} but the payload \
                             holds {payload_len} bytes",
                            section_id::name(id)
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-verify **every** checksum of the snapshot at `path` — header,
    /// per-section CRCs, the v3 padding rule — without decoding any body.
    /// This is the scrub primitive: a full O(file) integrity pass a cache
    /// can run in the background against resident entries to catch media
    /// corruption before a reload trips over it.
    ///
    /// # Errors
    /// Returns [`SnapshotError`] naming the corrupt section (v2+) or the
    /// checksum mismatch (v1); I/O errors pass through.
    pub fn verify_file<P: AsRef<Path>>(path: P) -> Result<(), SnapshotError> {
        let map = mapped::map_file(path)?;
        let bytes = &map[..];
        let version = Self::check_magic(bytes)?;
        match version {
            1 => {
                Self::parse_v1(bytes)?;
            }
            _ => {
                Self::parse_tabled(bytes, version, None)?;
            }
        }
        Ok(())
    }

    /// Shared entry check: minimum length, magic bytes, supported version.
    fn check_magic(bytes: &[u8]) -> Result<u32, SnapshotError> {
        if bytes.len() < 16 {
            return Err(SnapshotError::Malformed(format!(
                "{} bytes is shorter than the fixed header",
                bytes.len()
            )));
        }
        let mut magic = [0u8; 4];
        let mut cursor: &[u8] = bytes;
        cursor.copy_to_slice(&mut magic);
        if &magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Malformed(format!("bad magic {magic:?}")));
        }
        let version = cursor.get_u32_le();
        if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(SnapshotError::Malformed(format!(
                "unsupported snapshot version {version} (this reader supports \
                 {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION})"
            )));
        }
        Ok(version)
    }

    /// Memory-map the snapshot at `path` and decode it zero-copy: the file
    /// is validated (every checksum verified once, against the mapping) and
    /// the dataset section of a format-v3 file is served in place — see
    /// [`Snapshot::decode_mapped`]. Needs only read access to the file.
    pub fn open_mmap<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let map = mapped::map_file(path)?;
        Self::decode_mapped(&map)
    }

    /// Degraded-mode twin of [`Snapshot::open_mmap`]; see
    /// [`Snapshot::decode_degraded`] for the degradation policy.
    pub fn open_mmap_degraded<P: AsRef<Path>>(
        path: P,
    ) -> Result<(Self, DegradedLoad), SnapshotError> {
        let map = mapped::map_file(path)?;
        Self::decode_mapped_degraded(&map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::{CardinalityEstimator, NetConfig, TrainingSetBuilder};
    use laf_index::{build_engine, EngineChoice};
    use laf_synth::EmbeddingMixtureConfig;

    fn trained_snapshot() -> Snapshot {
        let (data, _) = EmbeddingMixtureConfig {
            n_points: 120,
            dim: 6,
            clusters: 3,
            seed: 77,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let training = TrainingSetBuilder {
            max_queries: Some(60),
            ..Default::default()
        }
        .build(&data, &data)
        .unwrap();
        let estimator = MlpEstimator::train(&training, &NetConfig::tiny());
        Snapshot {
            config: LafConfig::new(0.3, 4, 1.5),
            data,
            estimator,
            calibration: None,
            engine: None,
            shards: Vec::new(),
        }
    }

    /// The same snapshot split into `n` shards with per-shard engine
    /// structures (when the choice is persistable).
    fn sharded_snapshot(choice: EngineChoice, n: usize) -> Snapshot {
        let mut snap = trained_snapshot();
        snap.config.engine = choice;
        snap.data = snap.data.into_shared();
        let map = laf_vector::ShardMap::even_split(snap.data.len(), n);
        snap.shards = (0..map.n_shards())
            .map(|s| {
                let data = snap
                    .data
                    .slice_rows(map.start(s), map.shard_len(s))
                    .unwrap();
                let engine =
                    build_engine(choice, &data, snap.config.metric, snap.config.eps).persist();
                SnapshotShard { data, engine }
            })
            .collect();
        snap
    }

    /// The same snapshot with a persisted engine structure attached.
    fn snapshot_with_engine(choice: EngineChoice) -> Snapshot {
        let mut snap = trained_snapshot();
        snap.config.engine = choice;
        let persisted = {
            let engine = build_engine(choice, &snap.data, snap.config.metric, snap.config.eps);
            engine.persist()
        };
        snap.engine = persisted;
        snap
    }

    /// Hand-build a raw snapshot file in either format version from explicit
    /// `(id, body)` sections.
    fn build_raw(version: u32, sections: &[(u32, &[u8])]) -> Vec<u8> {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(version);
        buf.put_u32_le(sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in sections {
            buf.put_u32_le(*id);
            buf.put_u64_le(offset);
            buf.put_u64_le(body.len() as u64);
            if version >= 2 {
                buf.put_u32_le(crc32(body));
            }
            offset += body.len() as u64;
        }
        let header_crc = crc32(&buf);
        for (_, body) in sections {
            buf.put_slice(body);
        }
        if version >= 2 {
            buf.put_u32_le(header_crc);
        } else {
            let crc = crc32(&buf);
            buf.put_u32_le(crc);
        }
        buf
    }

    fn raw_sections(snap: &Snapshot) -> Vec<(u32, Vec<u8>)> {
        snap.common_sections().unwrap()
    }

    /// Absolute `(start, len)` of section `wanted`'s body inside an encoded
    /// v2+ snapshot, read from the (trusted) header table.
    fn section_span(bytes: &[u8], wanted: u32) -> (usize, usize) {
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let header_len = 12 + count * 24;
        for entry in 0..count {
            let at = 12 + entry * 24;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            if id != wanted {
                continue;
            }
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            return (header_len + offset, len);
        }
        panic!("section {wanted} not present");
    }

    /// `bytes` with one bit flipped in the middle of section `id`'s body.
    fn corrupt_section(bytes: &[u8], id: u32) -> Vec<u8> {
        let (start, len) = section_span(bytes, id);
        assert!(len > 0, "section {id} is empty");
        let mut corrupt = bytes.to_vec();
        corrupt[start + len / 2] ^= 0x01;
        corrupt
    }

    #[test]
    fn degraded_decode_survives_a_corrupt_engine_section() {
        let snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        let bytes = snap.encode().unwrap().to_vec();
        let corrupt = corrupt_section(&bytes, section_id::ENGINE);
        // The strict path still rejects the file outright.
        assert!(Snapshot::decode(&corrupt).is_err());
        let (back, report) = Snapshot::decode_degraded(&corrupt).unwrap();
        assert_eq!(report.sections, vec![DegradedSection::Engine]);
        assert!(!report.is_clean());
        assert!(back.engine.is_none(), "corrupt engine must be dropped");
        // Everything the engine is derived from survived untouched.
        assert_eq!(back.data, snap.data);
        assert_eq!(back.config, snap.config);
        // A clean file reports a clean load.
        let (_, clean) = Snapshot::decode_degraded(&bytes).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.to_string(), "clean load");
    }

    #[test]
    fn degraded_decode_substitutes_a_gate_off_estimator() {
        let snap = trained_snapshot();
        let bytes = snap.encode().unwrap().to_vec();
        let corrupt = corrupt_section(&bytes, section_id::ESTIMATOR);
        assert!(Snapshot::decode(&corrupt).is_err());
        let (back, report) = Snapshot::decode_degraded(&corrupt).unwrap();
        assert_eq!(report.sections, vec![DegradedSection::Estimator]);
        assert_eq!(back.estimator.data_dim(), snap.data.dim());
        // The substitute predicts an enormous finite cardinality for every
        // query, so no gate threshold can ever skip a range query.
        for i in (0..back.data.len()).step_by(29) {
            let e =
                laf_cardest::CardinalityEstimator::estimate(&back.estimator, back.data.row(i), 0.3);
            assert!(e.is_finite() && e > 1.0e30, "gate-off estimate {e}");
        }
        assert!(report.to_string().contains("exact-only"));
    }

    #[test]
    fn degraded_decode_drops_a_corrupt_calibration_summary() {
        let mut snap = trained_snapshot();
        snap.calibration = Some(QErrorReport {
            evaluated: 9,
            mean: 1.3,
            median: 1.1,
            p95: 2.2,
            max: 4.4,
        });
        let bytes = snap.encode().unwrap().to_vec();
        let corrupt = corrupt_section(&bytes, section_id::CALIBRATION);
        let (back, report) = Snapshot::decode_degraded(&corrupt).unwrap();
        assert_eq!(report.sections, vec![DegradedSection::Calibration]);
        assert!(back.calibration.is_none());
        assert_eq!(back.data, snap.data);
    }

    #[test]
    fn degraded_decode_still_fails_on_structural_corruption() {
        let snap = snapshot_with_engine(EngineChoice::Linear);
        let bytes = snap.encode().unwrap().to_vec();
        for id in [section_id::CONFIG, section_id::DATASET] {
            let corrupt = corrupt_section(&bytes, id);
            let err = Snapshot::decode_degraded(&corrupt).unwrap_err().to_string();
            assert!(
                err.contains(&format!("section `{}`", section_id::name(id)))
                    && err.contains("checksum mismatch"),
                "structural section {id} must hard-fail, got: {err}"
            );
        }
        // Sharded structural sections hard-fail the same way.
        let sharded = sharded_snapshot(EngineChoice::Grid { cell_side: 0.5 }, 3);
        let sbytes = sharded.encode().unwrap().to_vec();
        for id in [section_id::SHARD_MANIFEST, section_id::shard_dataset(1)] {
            let corrupt = corrupt_section(&sbytes, id);
            assert!(Snapshot::decode_degraded(&corrupt).is_err(), "section {id}");
        }
    }

    #[test]
    fn degraded_decode_rebuilds_only_the_corrupt_shard_engine() {
        let snap = sharded_snapshot(EngineChoice::Grid { cell_side: 0.5 }, 3);
        let bytes = snap.encode().unwrap().to_vec();
        let corrupt = corrupt_section(&bytes, section_id::shard_engine(1));
        let (back, report) = Snapshot::decode_degraded(&corrupt).unwrap();
        assert_eq!(report.sections, vec![DegradedSection::ShardEngine(1)]);
        assert!(back.shards[0].engine.is_some());
        assert!(
            back.shards[1].engine.is_none(),
            "corrupt shard engine drops"
        );
        assert!(back.shards[2].engine.is_some());
        assert_eq!(back.data, snap.data);
    }

    #[test]
    fn validate_header_is_shallow_and_verify_file_is_deep() {
        let snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        let path = temp_path("verify.lafs");
        snap.save(&path).unwrap();
        Snapshot::validate_header(&path).unwrap();
        Snapshot::verify_file(&path).unwrap();

        // A body flip passes the shallow header check but fails the scrub.
        let bytes = fs::read(&path).unwrap();
        let body_corrupt = corrupt_section(&bytes, section_id::DATASET);
        fs::write(&path, &body_corrupt).unwrap();
        Snapshot::validate_header(&path).unwrap();
        let err = Snapshot::verify_file(&path).unwrap_err().to_string();
        assert!(err.contains("section `dataset`"), "unexpected error: {err}");

        // A header flip fails both.
        let mut header_corrupt = bytes.clone();
        header_corrupt[9] ^= 0x01; // inside the section count
        fs::write(&path, &header_corrupt).unwrap();
        assert!(Snapshot::validate_header(&path).is_err());
        assert!(Snapshot::verify_file(&path).is_err());
        fs::remove_file(path).ok();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_round_trip_is_bit_exact() {
        let snap = trained_snapshot();
        let bytes = snap.encode().unwrap();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.data, snap.data);
        assert!(back.calibration.is_none());
        assert!(back.engine.is_none());
        for i in 0..snap.data.len() {
            assert_eq!(
                snap.estimator.estimate(snap.data.row(i), 0.4).to_bits(),
                back.estimator.estimate(back.data.row(i), 0.4).to_bits(),
                "row {i}"
            );
        }
    }

    #[test]
    fn v1_snapshots_still_load_without_an_engine() {
        // The backward-compatibility guarantee: a v1 file decodes through the
        // legacy path and reports no persisted engine, so serving falls back
        // to rebuilding from the config.
        let snap = trained_snapshot();
        let bytes = snap.encode_v1().unwrap();
        assert_eq!(bytes[4], 1, "encode_v1 must write format version 1");
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.data, snap.data);
        assert!(back.engine.is_none());
    }

    #[test]
    fn engine_section_round_trips_for_every_persistable_choice() {
        for choice in [
            EngineChoice::Linear,
            EngineChoice::Grid { cell_side: 0.5 },
            EngineChoice::KMeansTree {
                branching: 3,
                leaf_ratio: 0.7,
            },
            EngineChoice::Ivf {
                nlist: 4,
                nprobe: 2,
            },
            EngineChoice::CoverTree { basis: 2.0 },
        ] {
            let snap = snapshot_with_engine(choice);
            let persisted = snap.engine.clone().expect("persistable engine");
            let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
            assert_eq!(back.engine.as_ref(), Some(&persisted), "{choice:?}");
        }
    }

    #[test]
    fn omitted_engine_section_is_not_fatal() {
        // Every engine kind persists now, but the engine section stays
        // optional on the wire (v1 snapshots, hand-assembled values): an
        // omitted section decodes to `None` and serving rebuilds from the
        // config.
        let mut snap = snapshot_with_engine(EngineChoice::CoverTree { basis: 2.0 });
        assert!(snap.engine.is_some(), "cover trees persist their arena");
        snap.engine = None;
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert!(back.engine.is_none());
        assert_eq!(back.config.engine, EngineChoice::CoverTree { basis: 2.0 });
    }

    #[test]
    fn calibration_section_round_trips() {
        let mut snap = trained_snapshot();
        snap.calibration = Some(QErrorReport {
            evaluated: 42,
            mean: 1.5,
            median: 1.2,
            p95: 3.0,
            max: 9.0,
        });
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back.calibration, snap.calibration);
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        for bytes in [
            snap.encode().unwrap().to_vec(),
            snap.encode_v2().unwrap().to_vec(),
            snap.encode_v1().unwrap().to_vec(),
        ] {
            // Flip one byte at a sample of positions spread over the whole
            // file: a check (header/per-section CRC in v2+, whole-file CRC
            // in v1, the zero-padding rule in v3) must reject every one.
            let stride = (bytes.len() / 64).max(1);
            for pos in (0..bytes.len()).step_by(stride) {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 0x40;
                assert!(
                    Snapshot::decode(&corrupt).is_err(),
                    "flip at byte {pos} went undetected"
                );
            }
        }
    }

    #[test]
    fn corruption_in_each_section_names_that_section() {
        // Flip one byte in the middle of every section's body and demand the
        // decode error name the section — this is the operational win of the
        // v2 per-section CRC table over v1's single whole-file checksum.
        let mut snap = snapshot_with_engine(EngineChoice::KMeansTree {
            branching: 3,
            leaf_ratio: 0.7,
        });
        snap.calibration = Some(QErrorReport {
            evaluated: 10,
            mean: 1.1,
            median: 1.0,
            p95: 2.0,
            max: 3.0,
        });
        let bytes = snap.encode().unwrap().to_vec();
        // Re-derive the section layout from the (trusted) header.
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        assert_eq!(count, 5, "config, dataset, estimator, calibration, engine");
        let header_len = 12 + count * 24;
        for entry in 0..count {
            let at = 12 + entry * 24;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            assert!(len > 0, "section {id} is empty");
            let mut corrupt = bytes.clone();
            corrupt[header_len + offset + len / 2] ^= 0x01;
            let err = Snapshot::decode(&corrupt).unwrap_err().to_string();
            let name = section_id::name(id);
            assert!(
                err.contains(&format!("section `{name}`")) && err.contains("checksum mismatch"),
                "flip inside section {id} produced: {err}"
            );
        }
    }

    #[test]
    fn unsupported_version_is_rejected_with_a_clear_error() {
        let snap = trained_snapshot();
        let sections = raw_sections(&snap);
        let refs: Vec<(u32, &[u8])> = sections.iter().map(|(i, b)| (*i, b.as_slice())).collect();
        let bytes = build_raw(99, &refs);
        let err = Snapshot::decode(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("version 99"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn truncated_and_oversized_inputs_are_rejected() {
        let snap = trained_snapshot();
        for bytes in [snap.encode().unwrap(), snap.encode_v1().unwrap()] {
            assert!(Snapshot::decode(&bytes[..8]).is_err());
            let mut extended = bytes.to_vec();
            extended.extend_from_slice(&[0u8; 16]);
            assert!(Snapshot::decode(&extended).is_err());
        }
        assert!(Snapshot::decode(&[]).is_err());
    }

    #[test]
    fn unknown_sections_are_ignored_for_forward_compat() {
        // Append an extra section id 999 in both format versions: a
        // same-version reader must skip it and load the rest normally.
        let snap = trained_snapshot();
        let sections = raw_sections(&snap);
        let mystery = b"from-the-future".to_vec();
        let mut refs: Vec<(u32, &[u8])> =
            sections.iter().map(|(i, b)| (*i, b.as_slice())).collect();
        refs.push((999, &mystery));
        for version in [1, 2, 3, 4] {
            let bytes = build_raw(version, &refs);
            let back = Snapshot::decode(&bytes).unwrap();
            assert_eq!(back.config, snap.config, "version {version}");
            assert_eq!(back.data, snap.data, "version {version}");
        }
    }

    #[test]
    fn missing_required_section_is_named_in_the_error() {
        // Rebuild with only config + dataset: the estimator must be reported.
        let snap = trained_snapshot();
        let sections = raw_sections(&snap);
        let refs: Vec<(u32, &[u8])> = sections
            .iter()
            .filter(|(id, _)| *id != section_id::ESTIMATOR)
            .map(|(i, b)| (*i, b.as_slice()))
            .collect();
        for version in [1, 2, 3, 4] {
            let bytes = build_raw(version, &refs);
            let err = Snapshot::decode(&bytes).unwrap_err();
            assert!(
                err.to_string().contains("estimator"),
                "version {version}: unexpected error: {err}"
            );
        }
    }

    #[test]
    fn engine_config_mismatch_is_rejected() {
        // An engine section whose kind disagrees with the config's engine
        // choice is a malformed snapshot, not a silent fallback.
        let mut snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        snap.config.engine = EngineChoice::Linear;
        let err = Snapshot::decode(&snap.encode().unwrap()).unwrap_err();
        assert!(err.to_string().contains("grid"), "unexpected error: {err}");
    }

    #[test]
    fn engine_dataset_mismatch_is_rejected() {
        // A structurally valid engine section persisted over a *different*
        // dataset must fail validation instead of serving wrong neighbors.
        let snap = snapshot_with_engine(EngineChoice::Ivf {
            nlist: 4,
            nprobe: 2,
        });
        let (other, _) = EmbeddingMixtureConfig {
            n_points: 40,
            dim: 6,
            clusters: 2,
            seed: 5,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let mismatched = Snapshot {
            data: other,
            ..snap
        };
        // Retrain-free estimator/dataset dim both 6, so only the engine
        // coverage check can object.
        let err = Snapshot::decode(&mismatched.encode().unwrap()).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Engine(_)),
            "unexpected error: {err}"
        );
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("laf_core_snapshot_v3_test");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    #[test]
    fn encode_writes_version_4_with_eight_byte_aligned_sections() {
        let mut snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        snap.calibration = Some(QErrorReport {
            evaluated: 5,
            mean: 1.2,
            median: 1.1,
            p95: 2.5,
            max: 4.0,
        });
        let bytes = snap.encode().unwrap();
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            4,
            "encode must write format version 4"
        );
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        assert_eq!(count, 5);
        let header_len = 12 + count * 24;
        for entry in 0..count {
            let at = 12 + entry * 24;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            assert_eq!(
                (header_len + offset) % SECTION_ALIGN,
                0,
                "section {id} body must start at an 8-byte-aligned file offset"
            );
        }
        // The padded layout still round-trips bit-exactly.
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.data, snap.data);
        assert_eq!(back.calibration, snap.calibration);
        assert_eq!(back.engine, snap.engine);
    }

    #[test]
    fn v2_snapshots_still_load_with_their_engine() {
        let snap = snapshot_with_engine(EngineChoice::Ivf {
            nlist: 4,
            nprobe: 2,
        });
        let bytes = snap.encode_v2().unwrap();
        assert_eq!(bytes[4], 2, "encode_v2 must write format version 2");
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.data, snap.data);
        assert_eq!(back.engine, snap.engine);
    }

    #[test]
    fn encode_v3_still_writes_the_classic_layout() {
        let snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        let bytes = snap.encode_v3().unwrap();
        assert_eq!(bytes[4], 3, "encode_v3 must write format version 3");
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.data, snap.data);
        assert_eq!(back.engine, snap.engine);
        assert!(back.shards.is_empty());
    }

    #[test]
    fn sharded_snapshots_round_trip_with_per_shard_engines() {
        for n in [1usize, 3] {
            let snap = sharded_snapshot(EngineChoice::Grid { cell_side: 0.5 }, n);
            let bytes = snap.encode().unwrap();
            assert_eq!(bytes[4], 4, "sharded encode must write format version 4");
            let back = Snapshot::decode(&bytes).unwrap();
            assert_eq!(back.config, snap.config);
            assert_eq!(back.data, snap.data, "{n} shards");
            assert!(back.engine.is_none());
            assert_eq!(back.shards.len(), snap.shards.len());
            for (i, (b, s)) in back.shards.iter().zip(&snap.shards).enumerate() {
                assert_eq!(b.data, s.data, "{n} shards: shard {i} rows");
                assert_eq!(b.engine, s.engine, "{n} shards: shard {i} engine");
            }
        }
    }

    #[test]
    fn sharded_decode_reslices_one_shared_allocation() {
        // The owned decode path must not keep two copies of the dataset
        // alive: each shard is a zero-copy view into the concatenated
        // allocation behind `Snapshot::data`.
        let snap = sharded_snapshot(EngineChoice::Linear, 3);
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert!(back.data.backing().is_shared());
        let mut start = 0usize;
        for (i, shard) in back.shards.iter().enumerate() {
            assert!(shard.data.backing().is_shared(), "shard {i}");
            assert_eq!(
                shard.data.as_flat().as_ptr(),
                back.data.as_flat()[start * back.data.dim()..].as_ptr(),
                "shard {i} must alias the full dataset's buffer"
            );
            start += shard.data.len();
        }
        assert_eq!(start, back.data.len());
    }

    #[test]
    fn sharded_mmap_serves_every_shard_in_place() {
        let snap = sharded_snapshot(
            EngineChoice::Ivf {
                nlist: 4,
                nprobe: 4,
            },
            3,
        );
        let path = temp_path("sharded_mapped.lafs");
        snap.save(&path).unwrap();
        let back = Snapshot::open_mmap(&path).unwrap();
        for (i, shard) in back.shards.iter().enumerate() {
            assert!(
                cfg!(target_endian = "big") || shard.data.is_mapped(),
                "shard {i} of a v4 file written by save() must load zero-copy"
            );
        }
        assert_eq!(back.data, snap.data);
        for (b, s) in back.shards.iter().zip(&snap.shards) {
            assert_eq!(b.data, s.data);
            assert_eq!(b.engine, s.engine);
        }
        fs::remove_file(path).ok();
    }

    #[test]
    fn shard_manifest_row_count_mismatch_is_rejected() {
        // Hand-build a v4 file whose manifest disagrees with the shard
        // sections' actual row counts.
        let snap = trained_snapshot();
        let shared = snap.data.clone().into_shared();
        let a = shared.slice_rows(0, 50).unwrap();
        let b = shared.slice_rows(50, 70).unwrap();
        let sections = raw_sections(&snap);
        let mut manifest: Vec<u8> = Vec::new();
        manifest.extend_from_slice(&2u32.to_le_bytes());
        manifest.extend_from_slice(&60u64.to_le_bytes());
        manifest.extend_from_slice(&60u64.to_le_bytes());
        let enc_a = vio::encode(&a);
        let enc_b = vio::encode(&b);
        let refs: Vec<(u32, &[u8])> = vec![
            (section_id::CONFIG, sections[0].1.as_slice()),
            (section_id::ESTIMATOR, sections[2].1.as_slice()),
            (section_id::SHARD_MANIFEST, manifest.as_slice()),
            (section_id::shard_dataset(0), enc_a.as_ref()),
            (section_id::shard_dataset(1), enc_b.as_ref()),
        ];
        let err = Snapshot::decode(&build_raw(4, &refs))
            .unwrap_err()
            .to_string();
        assert!(err.contains("manifest declares"), "unexpected error: {err}");
    }

    #[test]
    fn sharded_corruption_names_the_shard_section() {
        let snap = sharded_snapshot(EngineChoice::Grid { cell_side: 0.5 }, 3);
        let bytes = snap.encode().unwrap().to_vec();
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let header_len = 12 + count * 24;
        let mut seen = 0usize;
        for entry in 0..count {
            let at = 12 + entry * 24;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let name = section_id::name(id);
            if name != "shard-dataset" && name != "shard-engine" && name != "shard-manifest" {
                continue;
            }
            seen += 1;
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            let mut corrupt = bytes.clone();
            corrupt[header_len + offset + len / 2] ^= 0x01;
            let err = Snapshot::decode(&corrupt).unwrap_err().to_string();
            assert!(
                err.contains(&format!("section `{name}`")) && err.contains("checksum mismatch"),
                "flip inside section {id} produced: {err}"
            );
        }
        assert_eq!(seen, 7, "manifest + 3 shard datasets + 3 shard engines");
    }

    #[test]
    fn encode_rejects_inconsistent_shard_layouts() {
        // A sharded snapshot cannot be written as v3.
        let snap = sharded_snapshot(EngineChoice::Grid { cell_side: 0.5 }, 2);
        let err = snap.encode_v3().unwrap_err().to_string();
        assert!(err.contains("version 4"), "unexpected error: {err}");
        // A global engine alongside shards is a layout bug, not a file.
        let mut with_global = sharded_snapshot(EngineChoice::Grid { cell_side: 0.5 }, 2);
        with_global.engine = with_global.shards[0].engine.clone();
        assert!(with_global.encode().is_err());
        // Shard rows must cover the dataset exactly.
        let mut short = sharded_snapshot(EngineChoice::Linear, 3);
        short.shards.pop();
        let err = short.encode().unwrap_err().to_string();
        assert!(err.contains("row counts"), "unexpected error: {err}");
    }

    #[test]
    fn section_id_names_cover_the_shard_ranges() {
        assert_eq!(section_id::name(section_id::CONFIG), "config");
        assert_eq!(
            section_id::name(section_id::SHARD_MANIFEST),
            "shard-manifest"
        );
        assert_eq!(
            section_id::name(section_id::shard_dataset(0)),
            "shard-dataset"
        );
        assert_eq!(
            section_id::name(section_id::shard_dataset(section_id::MAX_SHARDS - 1)),
            "shard-dataset"
        );
        assert_eq!(
            section_id::name(section_id::shard_engine(0)),
            "shard-engine"
        );
        assert_eq!(
            section_id::name(section_id::shard_engine(section_id::MAX_SHARDS - 1)),
            "shard-engine"
        );
        assert_eq!(section_id::name(999), "unknown");
    }

    #[test]
    fn save_streams_bytes_identical_to_encode() {
        // encode_to_writer is the single writer; save must stream exactly
        // the bytes encode() materializes.
        let snap = snapshot_with_engine(EngineChoice::KMeansTree {
            branching: 3,
            leaf_ratio: 0.7,
        });
        let path = temp_path("stream.lafs");
        snap.save(&path).unwrap();
        let on_disk = fs::read(&path).unwrap();
        assert_eq!(on_disk, snap.encode().unwrap().to_vec());
        fs::remove_file(path).ok();
    }

    #[test]
    fn open_mmap_serves_the_dataset_in_place() {
        let snap = snapshot_with_engine(EngineChoice::Grid { cell_side: 0.5 });
        let path = temp_path("mapped.lafs");
        snap.save(&path).unwrap();
        let mapped = Snapshot::open_mmap(&path).unwrap();
        assert!(
            cfg!(target_endian = "big") || mapped.data.is_mapped(),
            "a v3 file written by save() must load zero-copy"
        );
        assert_eq!(mapped.data, snap.data);
        assert_eq!(mapped.config, snap.config);
        assert_eq!(mapped.engine, snap.engine);
        // The copying loader agrees with the mapped one bit for bit.
        let copied = Snapshot::load(&path).unwrap();
        assert!(!copied.data.is_mapped());
        assert_eq!(copied.data, mapped.data);
        fs::remove_file(path).ok();
    }

    #[test]
    fn open_mmap_on_v1_and_v2_files_falls_back_to_copying() {
        let snap = trained_snapshot();
        for (version, bytes) in [
            (1u32, snap.encode_v1().unwrap()),
            (2u32, snap.encode_v2().unwrap()),
        ] {
            let path = temp_path(&format!("legacy_v{version}.lafs"));
            fs::write(&path, &bytes).unwrap();
            let back = Snapshot::open_mmap(&path).unwrap();
            assert!(
                !back.data.is_mapped(),
                "v{version} files must load through the copying path"
            );
            assert_eq!(back.data, snap.data, "version {version}");
            fs::remove_file(path).ok();
        }
    }

    #[test]
    fn misaligned_v3_dataset_falls_back_to_an_owned_copy() {
        // Hand-craft a v3 file that violates the writer's alignment rule: a
        // filler section sized so the dataset's f32 payload lands on an odd
        // file offset. The loader must transparently copy instead of
        // reinterpreting, with byte-identical contents.
        let snap = trained_snapshot();
        let sections = raw_sections(&snap);
        let config = &sections[0];
        assert_eq!(config.0, section_id::CONFIG);
        let header_len = 12 + 4 * 24;
        let mut filler_len = 1usize;
        while (header_len + config.1.len() + filler_len + 20).is_multiple_of(4) {
            filler_len += 1;
        }
        let filler = vec![0xABu8; filler_len];
        let refs: Vec<(u32, &[u8])> = vec![
            (sections[0].0, sections[0].1.as_slice()),
            (999, filler.as_slice()),
            (sections[1].0, sections[1].1.as_slice()),
            (sections[2].0, sections[2].1.as_slice()),
        ];
        assert_eq!(refs[2].0, section_id::DATASET);
        let bytes = build_raw(3, &refs);
        let path = temp_path("misaligned_v3.lafs");
        fs::write(&path, &bytes).unwrap();
        let back = Snapshot::open_mmap(&path).unwrap();
        assert!(
            !back.data.is_mapped(),
            "misaligned payload must not be reinterpreted"
        );
        assert_eq!(back.data, snap.data, "fallback copy must be byte-identical");
        fs::remove_file(path).ok();
    }

    #[test]
    fn nonzero_padding_is_rejected_in_v3() {
        // The alignment padding is the only part of a v3 file no CRC covers;
        // the zero rule keeps "every corrupted byte is detected" true.
        let snap = trained_snapshot();
        let bytes = snap.encode().unwrap().to_vec();
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let header_len = 12 + count * 24;
        // header_len = 12 + 24·count ≡ 4 (mod 8), so the first section is
        // always preceded by exactly 4 padding bytes.
        let first_offset = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        assert_eq!(first_offset, 4, "expected 4 bytes of leading padding");
        let mut corrupt = bytes.clone();
        corrupt[header_len] = 0x5A;
        let err = Snapshot::decode(&corrupt).unwrap_err().to_string();
        assert!(err.contains("padding"), "unexpected error: {err}");
    }

    #[test]
    fn file_round_trip() {
        let snap = trained_snapshot();
        let dir = std::env::temp_dir().join("laf_core_snapshot_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.lafs");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back.data, snap.data);
        fs::remove_file(path).ok();
        assert!(matches!(
            Snapshot::load("/nonexistent/nope.lafs"),
            Err(SnapshotError::Io(_))
        ));
    }
}
