//! Versioned, checksummed binary snapshots — the boundary between the
//! offline training plane and the online serving plane.
//!
//! The paper's premise is *train once, serve many*: the cardinality estimator
//! is fitted offline and then amortized across clustering runs. A
//! [`Snapshot`] persists everything a serving process needs to rebuild the
//! exact training-time pipeline:
//!
//! * the [`LafConfig`] (ε, τ, α, metric and the [`laf_index::EngineChoice`]
//!   needed to rebuild the range-query engine),
//! * the [`Dataset`] (flat-buffer encoded via [`laf_vector::io`]),
//! * the trained [`MlpEstimator`] (raw IEEE-754 weight bits via
//!   [`MlpEstimator::encode_binary`] — **bit-exact**, not a text round-trip),
//! * optionally a [`QErrorReport`] calibration summary captured at train
//!   time.
//!
//! # Wire format (version 1)
//!
//! All integers little-endian:
//!
//! ```text
//! magic              4 bytes   b"LAFS"
//! format version     u32       currently 1
//! section count      u32
//! section table      count x { id: u32, offset: u64, len: u64 }
//!                              (offsets relative to the payload start,
//!                               i.e. the first byte after the table)
//! payload            concatenated section bodies
//! checksum           u32       CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! Compatibility rules: a reader **rejects** an unknown format version or a
//! checksum mismatch, **ignores** unknown section ids (so a newer writer may
//! append sections without breaking older readers of the same version), and
//! **requires** the config, dataset and estimator sections.

use crate::config::LafConfig;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use laf_cardest::{MlpEstimator, QErrorReport};
use laf_vector::{io as vio, Dataset, VectorError};
use std::fmt;
use std::fs;
use std::path::Path;

/// Magic bytes identifying a LAF snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"LAFS";
/// Current snapshot format version. Readers reject any other version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Section id: JSON-encoded [`LafConfig`] (JSON inside the binary container
/// so configuration fields can evolve under serde's defaulting rules without
/// a format-version bump).
const SECTION_CONFIG: u32 = 1;
/// Section id: flat-buffer encoded [`Dataset`] (`laf_vector::io` format).
const SECTION_DATASET: u32 = 2;
/// Section id: binary [`MlpEstimator`] (raw weight bits).
const SECTION_ESTIMATOR: u32 = 3;
/// Section id: JSON-encoded [`QErrorReport`] calibration summary (optional).
const SECTION_CALIBRATION: u32 = 4;

/// Errors produced while encoding, decoding or (de)serializing snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// Structural problem in the snapshot bytes (bad magic, unsupported
    /// version, checksum mismatch, a section spilling past the payload,
    /// missing required sections). Overlapping or duplicate-id sections are
    /// *not* rejected: each lookup bounds-checks independently and the first
    /// table entry with a matching id wins.
    Malformed(String),
    /// A section body failed to decode (dataset payload, estimator weights).
    Vector(VectorError),
    /// A JSON section failed to (de)serialize.
    Json(serde_json::Error),
    /// Filesystem failure during load/save.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapshotError::Vector(e) => write!(f, "snapshot section error: {e}"),
            SnapshotError::Json(e) => write!(f, "snapshot JSON section error: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Vector(e) => Some(e),
            SnapshotError::Json(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Malformed(_) => None,
        }
    }
}

impl From<VectorError> for SnapshotError {
    fn from(e: VectorError) -> Self {
        SnapshotError::Vector(e)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Json(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
///
/// Implemented bitwise: the snapshot checksum runs once per save/load over a
/// buffer the filesystem I/O dominates anyway, so a lookup table would buy
/// nothing measurable.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Everything a serving process needs to rebuild a trained LAF pipeline.
///
/// See the [module documentation](self) for the wire format. Snapshots are
/// usually handled through [`crate::LafPipeline`]; the raw type is exposed
/// for tooling that inspects or rewrites snapshot files.
#[derive(Debug)]
pub struct Snapshot {
    /// The configuration the pipeline was trained under, including the
    /// engine choice used to rebuild the range-query index at load time.
    pub config: LafConfig,
    /// The indexed dataset.
    pub data: Dataset,
    /// The trained estimator (bit-exact across save/load).
    pub estimator: MlpEstimator,
    /// Calibration summary captured at training time, when requested.
    pub calibration: Option<QErrorReport>,
}

impl Snapshot {
    /// Encode into the version-1 binary snapshot format.
    pub fn encode(&self) -> Result<Bytes, SnapshotError> {
        let config_json = serde_json::to_string(&self.config)?;
        let calibration_json = self
            .calibration
            .as_ref()
            .map(serde_json::to_string)
            .transpose()?;

        let mut estimator_bytes: Vec<u8> = Vec::new();
        self.estimator.encode_binary(&mut estimator_bytes);

        // (id, body) pairs in payload order.
        let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(4);
        sections.push((SECTION_CONFIG, config_json.into_bytes()));
        let mut dataset_bytes: Vec<u8> = Vec::with_capacity(vio::encoded_len(&self.data));
        vio::encode_into(&self.data, &mut dataset_bytes);
        sections.push((SECTION_DATASET, dataset_bytes));
        sections.push((SECTION_ESTIMATOR, estimator_bytes));
        if let Some(json) = calibration_json {
            sections.push((SECTION_CALIBRATION, json.into_bytes()));
        }

        let table_len = sections.len() * 20;
        let payload_len: usize = sections.iter().map(|(_, b)| b.len()).sum();
        let mut buf = BytesMut::with_capacity(12 + table_len + payload_len + 4);
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(SNAPSHOT_VERSION);
        buf.put_u32_le(sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in &sections {
            buf.put_u32_le(*id);
            buf.put_u64_le(offset);
            buf.put_u64_le(body.len() as u64);
            offset += body.len() as u64;
        }
        for (_, body) in &sections {
            buf.put_slice(body);
        }
        let checksum = crc32(&buf);
        buf.put_u32_le(checksum);
        Ok(buf.freeze())
    }

    /// Decode a snapshot produced by [`Snapshot::encode`].
    ///
    /// # Errors
    /// Returns [`SnapshotError::Malformed`] on any structural problem and the
    /// wrapped section error when a section body fails to decode. The
    /// checksum is verified **before** any section is parsed, so a corrupted
    /// file is rejected wholesale rather than half-loaded.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 16 {
            return Err(SnapshotError::Malformed(format!(
                "{} bytes is shorter than the fixed header",
                bytes.len()
            )));
        }
        let (body, stored) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(stored.try_into().expect("4-byte split"));
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(SnapshotError::Malformed(format!(
                "checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }

        let mut cursor: &[u8] = body;
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        if &magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Malformed(format!("bad magic {magic:?}")));
        }
        let version = cursor.get_u32_le();
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Malformed(format!(
                "unsupported snapshot version {version} (this reader supports {SNAPSHOT_VERSION})"
            )));
        }
        let count = cursor.get_u32_le() as usize;
        if cursor.remaining() < count * 20 {
            return Err(SnapshotError::Malformed(format!(
                "section table for {count} sections exceeds the payload"
            )));
        }
        let mut table: Vec<(u32, usize, usize)> = Vec::with_capacity(count);
        for _ in 0..count {
            let id = cursor.get_u32_le();
            let offset = cursor.get_u64_le() as usize;
            let len = cursor.get_u64_le() as usize;
            table.push((id, offset, len));
        }
        let payload = cursor;

        let section = |wanted: u32| -> Result<Option<&[u8]>, SnapshotError> {
            for &(id, offset, len) in &table {
                if id != wanted {
                    continue;
                }
                let end = offset.checked_add(len).ok_or_else(|| {
                    SnapshotError::Malformed(format!("section {id} length overflow"))
                })?;
                if end > payload.len() {
                    return Err(SnapshotError::Malformed(format!(
                        "section {id} spans {offset}..{end} but the payload holds {} bytes",
                        payload.len()
                    )));
                }
                return Ok(Some(&payload[offset..end]));
            }
            Ok(None)
        };
        let required = |wanted: u32, name: &str| -> Result<&[u8], SnapshotError> {
            section(wanted)?.ok_or_else(|| {
                SnapshotError::Malformed(format!("missing required section {name} (id {wanted})"))
            })
        };

        let config: LafConfig = serde_json::from_str(
            std::str::from_utf8(required(SECTION_CONFIG, "config")?)
                .map_err(|e| SnapshotError::Malformed(format!("config is not UTF-8: {e}")))?,
        )?;
        let data = vio::decode(required(SECTION_DATASET, "dataset")?)?;
        let mut estimator_bytes = required(SECTION_ESTIMATOR, "estimator")?;
        let estimator = MlpEstimator::decode_binary(&mut estimator_bytes)?;
        if !estimator_bytes.is_empty() {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after the estimator section",
                estimator_bytes.len()
            )));
        }
        if estimator.data_dim() != data.dim() {
            return Err(SnapshotError::Malformed(format!(
                "estimator expects {}-dimensional queries but the dataset is {}-dimensional",
                estimator.data_dim(),
                data.dim()
            )));
        }
        let calibration = section(SECTION_CALIBRATION)?
            .map(|b| -> Result<QErrorReport, SnapshotError> {
                Ok(serde_json::from_str(std::str::from_utf8(b).map_err(
                    |e| SnapshotError::Malformed(format!("calibration is not UTF-8: {e}")),
                )?)?)
            })
            .transpose()?;

        Ok(Self {
            config,
            data,
            estimator,
            calibration,
        })
    }

    /// Write the encoded snapshot to `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        fs::write(path, self.encode()?)?;
        Ok(())
    }

    /// Read and decode a snapshot previously written with [`Snapshot::save`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let bytes = fs::read(path)?;
        Self::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::{CardinalityEstimator, NetConfig, TrainingSetBuilder};
    use laf_synth::EmbeddingMixtureConfig;

    fn trained_snapshot() -> Snapshot {
        let (data, _) = EmbeddingMixtureConfig {
            n_points: 120,
            dim: 6,
            clusters: 3,
            seed: 77,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let training = TrainingSetBuilder {
            max_queries: Some(60),
            ..Default::default()
        }
        .build(&data, &data)
        .unwrap();
        let estimator = MlpEstimator::train(&training, &NetConfig::tiny());
        Snapshot {
            config: LafConfig::new(0.3, 4, 1.5),
            data,
            estimator,
            calibration: None,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_round_trip_is_bit_exact() {
        let snap = trained_snapshot();
        let bytes = snap.encode().unwrap();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.data, snap.data);
        assert!(back.calibration.is_none());
        for i in 0..snap.data.len() {
            assert_eq!(
                snap.estimator.estimate(snap.data.row(i), 0.4).to_bits(),
                back.estimator.estimate(back.data.row(i), 0.4).to_bits(),
                "row {i}"
            );
        }
    }

    #[test]
    fn calibration_section_round_trips() {
        let mut snap = trained_snapshot();
        snap.calibration = Some(QErrorReport {
            evaluated: 42,
            mean: 1.5,
            median: 1.2,
            p95: 3.0,
            max: 9.0,
        });
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back.calibration, snap.calibration);
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let snap = trained_snapshot();
        let bytes = snap.encode().unwrap().to_vec();
        // Flip one byte at a sample of positions spread over the whole file:
        // the checksum (or, for the trailer itself, the stored-vs-computed
        // comparison) must reject every single one.
        let stride = (bytes.len() / 64).max(1);
        for pos in (0..bytes.len()).step_by(stride) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                Snapshot::decode(&corrupt).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn unsupported_version_is_rejected_with_a_clear_error() {
        let snap = trained_snapshot();
        let mut bytes = snap.encode().unwrap().to_vec();
        bytes[4] = 99; // bump the version field...
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]); // ...and re-seal the checksum
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = Snapshot::decode(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("version 99"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn truncated_and_oversized_inputs_are_rejected() {
        let snap = trained_snapshot();
        let bytes = snap.encode().unwrap();
        assert!(Snapshot::decode(&bytes[..8]).is_err());
        assert!(Snapshot::decode(&[]).is_err());
        let mut extended = bytes.to_vec();
        extended.extend_from_slice(&[0u8; 16]);
        assert!(Snapshot::decode(&extended).is_err());
    }

    #[test]
    fn unknown_sections_are_ignored_for_forward_compat() {
        // Hand-build a snapshot with an extra section id 999 appended: a
        // same-version reader must skip it and load the rest normally.
        let snap = trained_snapshot();
        let config_json = serde_json::to_string(&snap.config).unwrap();
        let mut dataset_bytes: Vec<u8> = Vec::new();
        vio::encode_into(&snap.data, &mut dataset_bytes);
        let mut estimator_bytes: Vec<u8> = Vec::new();
        snap.estimator.encode_binary(&mut estimator_bytes);
        let mystery = b"from-the-future".to_vec();

        let sections: Vec<(u32, &[u8])> = vec![
            (SECTION_CONFIG, config_json.as_bytes()),
            (SECTION_DATASET, &dataset_bytes),
            (SECTION_ESTIMATOR, &estimator_bytes),
            (999, &mystery),
        ];
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(SNAPSHOT_VERSION);
        buf.put_u32_le(sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in &sections {
            buf.put_u32_le(*id);
            buf.put_u64_le(offset);
            buf.put_u64_le(body.len() as u64);
            offset += body.len() as u64;
        }
        for (_, body) in &sections {
            buf.put_slice(body);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);

        let back = Snapshot::decode(&buf).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.data, snap.data);
    }

    #[test]
    fn missing_required_section_is_named_in_the_error() {
        // Rebuild with only config + dataset: the estimator must be reported.
        let snap = trained_snapshot();
        let config_json = serde_json::to_string(&snap.config).unwrap();
        let mut dataset_bytes: Vec<u8> = Vec::new();
        vio::encode_into(&snap.data, &mut dataset_bytes);
        let sections: Vec<(u32, &[u8])> = vec![
            (SECTION_CONFIG, config_json.as_bytes()),
            (SECTION_DATASET, &dataset_bytes),
        ];
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(SNAPSHOT_VERSION);
        buf.put_u32_le(sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in &sections {
            buf.put_u32_le(*id);
            buf.put_u64_le(offset);
            buf.put_u64_le(body.len() as u64);
            offset += body.len() as u64;
        }
        for (_, body) in &sections {
            buf.put_slice(body);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);

        let err = Snapshot::decode(&buf).unwrap_err();
        assert!(
            err.to_string().contains("estimator"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn file_round_trip() {
        let snap = trained_snapshot();
        let dir = std::env::temp_dir().join("laf_core_snapshot_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.lafs");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back.data, snap.data);
        fs::remove_file(path).ok();
        assert!(matches!(
            Snapshot::load("/nonexistent/nope.lafs"),
            Err(SnapshotError::Io(_))
        ));
    }
}
