//! # laf-core
//!
//! The paper's contribution: **LAF**, a Learned Accelerator Framework for
//! angular-distance DBSCAN-like clustering, and the two algorithms built on
//! it, **LAF-DBSCAN** (Algorithm 1) and **LAF-DBSCAN++**.
//!
//! LAF is a plugin with two halves:
//!
//! 1. **Cardinality-estimation gate** ([`CardEstGate`]): before any range
//!    query for a point `P`, ask a [`laf_cardest::CardinalityEstimator`] how
//!    many neighbors `P` has within ε. If the prediction is below `α·τ`
//!    (error factor times the core threshold), skip the range query entirely
//!    and treat `P` as a *predicted stop point* (non-core/noise).
//! 2. **Post-processing** ([`PostProcessor`] over a [`PartialNeighborMap`]):
//!    predicted stop points never execute range queries, but whenever some
//!    *other* point's range query finds them, that point is recorded as a
//!    partial neighbor (Algorithm 2, `UpdatePartialNeighbors`). After
//!    clustering, any predicted stop point with at least τ recorded partial
//!    neighbors is a detected false negative: the clusters around it were
//!    wrongly separated, and the post-processor merges them into one
//!    (Algorithm 3).
//!
//! The error factor α exposes the speed/quality trade-off the paper studies
//! in its Figures 2–3: larger α ⇒ more skipped queries ⇒ faster and less
//! accurate; smaller α ⇒ fewer false negatives ⇒ slower and more accurate.

#![warn(missing_docs)]

pub mod config;
pub mod gate;
pub mod laf_dbscan;
pub mod laf_dbscan_pp;
pub mod partial;
pub mod post;

pub use config::{LafConfig, LafStats};
pub use gate::CardEstGate;
pub use laf_dbscan::LafDbscan;
pub use laf_dbscan_pp::{LafDbscanPlusPlus, LafDbscanPlusPlusConfig};
pub use partial::PartialNeighborMap;
pub use post::PostProcessor;
