//! # laf-core
//!
//! The paper's contribution: **LAF**, a Learned Accelerator Framework for
//! angular-distance DBSCAN-like clustering, and the two algorithms built on
//! it, **LAF-DBSCAN** (Algorithm 1) and **LAF-DBSCAN++**.
//!
//! LAF is a plugin with two halves:
//!
//! 1. **Cardinality-estimation gate** ([`CardEstGate`]): before any range
//!    query for a point `P`, ask a [`laf_cardest::CardinalityEstimator`] how
//!    many neighbors `P` has within ε. If the prediction is below `α·τ`
//!    (error factor times the core threshold), skip the range query entirely
//!    and treat `P` as a *predicted stop point* (non-core/noise).
//! 2. **Post-processing** ([`PostProcessor`] over a [`PartialNeighborMap`]):
//!    predicted stop points never execute range queries, but whenever some
//!    *other* point's range query finds them, that point is recorded as a
//!    partial neighbor (Algorithm 2, `UpdatePartialNeighbors`). After
//!    clustering, any predicted stop point with at least τ recorded partial
//!    neighbors is a detected false negative: the clusters around it were
//!    wrongly separated, and the post-processor merges them into one
//!    (Algorithm 3).
//!
//! The error factor α exposes the speed/quality trade-off the paper studies
//! in its Figures 2–3: larger α ⇒ more skipped queries ⇒ faster and less
//! accurate; smaller α ⇒ fewer false negatives ⇒ slower and more accurate.
//!
//! # Prescan / batch execution model
//!
//! Algorithm 1 as written is one-point-at-a-time: each point asks the
//! estimator for one prediction just before its range query. Since every
//! point is predicted at most once and the prediction does not depend on any
//! clustering state, the predictions can all be computed **before** the main
//! loop. Both [`LafDbscan`] and [`LafDbscanPlusPlus`] therefore run in two
//! stages:
//!
//! 1. **Prescan** ([`CardEstGate::prescan`]): the dataset's rows are chunked
//!    into batches (of [`gate::PRESCAN_BATCH`] points), the batches fan out
//!    over a rayon thread pool, and each batch runs a single
//!    [`laf_cardest::CardinalityEstimator::estimate_batch`] call — for the
//!    MLP/RMI estimators a matrix-shaped forward pass that streams each
//!    weight row once per batch instead of once per point. The raw
//!    predictions are folded into per-point [`GateDecision`]s.
//! 2. **Sequential expansion**: the BFS cluster growth of Algorithm 1 runs
//!    unchanged, reading precomputed decisions via [`CardEstGate::decide`]
//!    instead of invoking the estimator.
//!
//! Batched estimation is bit-exact with per-point estimation and the gate's
//! call/skip counters advance when a decision is *consumed*, not when it is
//! precomputed — so cluster assignments and [`LafStats`] are byte-identical
//! to the sequential execution model, at a fraction of the inference cost.
//!
//! The [`LafConfig::threads`] knob bounds the worker threads of the batched
//! stages (`0` = all cores). It composes with the α trade-off discussed
//! above but is orthogonal to it: α changes *what* is computed (which range
//! queries run, and therefore the output); `threads` only changes *how fast*
//! the prescan and batched kernels run, never the output.
//!
//! # Train once, serve many
//!
//! The estimator is trained offline and amortized across clustering runs.
//! The [`snapshot`] module persists a trained pipeline (dataset, estimator
//! weights, configuration) in a versioned, checksummed binary format, and
//! [`LafPipeline`] wraps the two lifecycle paths: a **cold** start trains and
//! optionally saves ([`LafPipelineBuilder::train_and_save`]); a **warm**
//! start restores from a snapshot ([`LafPipeline::load`]) and serves
//! immediately, bit-exact with the process that trained it.
//!
//! Pipelines can additionally be **sharded**
//! ([`LafPipelineBuilder::shards`]): the snapshot then carries one dataset
//! slice and one persisted engine structure per shard (format v4), warm
//! starts restore a `laf_index::ShardedEngine` that fans queries out across
//! the shards in parallel, and every merged answer — range hits, counts,
//! knn orderings, cluster labels, [`LafStats`] — is bit-identical to the
//! unsharded pipeline's.

#![warn(missing_docs)]

pub mod config;
/// The deterministic failpoint registry (re-exported from
/// [`laf_vector::fault`]): the storage plane consults named sites at its
/// failure-prone edges; a no-op unless the `fault-injection` feature is
/// enabled.
pub use laf_vector::fault;
pub mod gate;
pub mod laf_dbscan;
pub mod laf_dbscan_pp;
pub mod mutable;
pub mod partial;
pub mod pipeline;
pub mod post;
pub mod snapshot;
pub mod wal;

pub use config::{LafConfig, LafStats};
pub use gate::{CardEstGate, GateDecision, Prescan};
pub use laf_dbscan::LafDbscan;
pub use laf_dbscan_pp::{LafDbscanPlusPlus, LafDbscanPlusPlusConfig};
pub use mutable::{Manifest, MutablePipeline, MANIFEST_FILE, WAL_FILE};
pub use partial::PartialNeighborMap;
pub use pipeline::{LafPipeline, LafPipelineBuilder, SharedEngine};
pub use post::PostProcessor;
pub use snapshot::{
    section_id, DegradedLoad, DegradedSection, Snapshot, SnapshotError, SnapshotShard,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use wal::{Wal, WalOp, WalRecord};
