//! The partial-neighbor map `E` (Algorithm 2 of the paper).
//!
//! For every *predicted stop point* (a point whose range query was skipped
//! because the estimator said it is not core), LAF keeps the subset of its
//! true neighbors that happens to be discovered for free: whenever another
//! point `P` executes a range query and finds a predicted stop point `Pₙ`
//! among its neighbors, `P` is — by symmetry of the distance — also a
//! neighbor of `Pₙ` and is recorded in `E(Pₙ)`. After clustering, a predicted
//! stop point with at least τ recorded partial neighbors must actually be a
//! core point (false negative), and the clusters around it get merged by the
//! post-processing step.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Map from predicted stop points to the partial neighbors discovered so far.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PartialNeighborMap {
    entries: HashMap<u32, HashSet<u32>>,
}

impl PartialNeighborMap {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `point` as a predicted stop point (line 8 / 27 of
    /// Algorithm 1: `if P not in E then E(P) := ∅`). Keeps any partial
    /// neighbors already recorded for it.
    pub fn register_stop_point(&mut self, point: u32) {
        self.entries.entry(point).or_default();
    }

    /// `UpdatePartialNeighbors` (Algorithm 2): `querier` has just executed a
    /// range query and found `neighbors`; for every neighbor already tracked
    /// in the map, record `querier` as one of its partial neighbors.
    pub fn update(&mut self, querier: u32, neighbors: &[u32]) {
        for &nb in neighbors {
            if nb == querier {
                continue;
            }
            if let Some(partial) = self.entries.get_mut(&nb) {
                partial.insert(querier);
            }
        }
    }

    /// Whether `point` is tracked as a predicted stop point.
    pub fn contains(&self, point: u32) -> bool {
        self.entries.contains_key(&point)
    }

    /// Partial neighbors recorded for `point` (empty if not tracked).
    pub fn partial_neighbors(&self, point: u32) -> impl Iterator<Item = u32> + '_ {
        self.entries
            .get(&point)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of partial neighbors recorded for `point`.
    pub fn neighbor_count(&self, point: u32) -> usize {
        self.entries.get(&point).map_or(0, HashSet::len)
    }

    /// Number of tracked predicted stop points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no stop points are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(stop_point, partial_neighbors)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &HashSet<u32>)> + '_ {
        self.entries.iter().map(|(&p, s)| (p, s))
    }

    /// The predicted stop points whose partial-neighbor count reaches τ —
    /// the detected false negatives the post-processing acts on.
    pub fn false_negatives(&self, tau: usize) -> Vec<u32> {
        let mut fns: Vec<u32> = self
            .entries
            .iter()
            .filter(|(_, s)| s.len() >= tau)
            .map(|(&p, _)| p)
            .collect();
        fns.sort_unstable();
        fns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_update() {
        let mut e = PartialNeighborMap::new();
        assert!(e.is_empty());
        e.register_stop_point(7);
        e.register_stop_point(9);
        assert_eq!(e.len(), 2);
        assert!(e.contains(7));
        assert!(!e.contains(3));

        // Point 1 queries and finds 7 and 2 among its neighbors: only the
        // tracked stop point 7 gains a partial neighbor.
        e.update(1, &[7, 2]);
        assert_eq!(e.neighbor_count(7), 1);
        assert_eq!(e.neighbor_count(9), 0);
        assert_eq!(e.neighbor_count(2), 0);

        // Registering again must not clear recorded neighbors.
        e.register_stop_point(7);
        assert_eq!(e.neighbor_count(7), 1);

        // Self matches are ignored, duplicates are deduplicated.
        e.update(7, &[7]);
        e.update(1, &[7]);
        assert_eq!(e.neighbor_count(7), 1);
        e.update(4, &[7, 9]);
        assert_eq!(e.neighbor_count(7), 2);
        assert_eq!(e.neighbor_count(9), 1);
        let partial: Vec<u32> = {
            let mut v: Vec<u32> = e.partial_neighbors(7).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(partial, vec![1, 4]);
    }

    #[test]
    fn false_negative_detection_uses_tau() {
        let mut e = PartialNeighborMap::new();
        e.register_stop_point(0);
        e.register_stop_point(1);
        e.update(10, &[0, 1]);
        e.update(11, &[0]);
        e.update(12, &[0]);
        assert_eq!(e.false_negatives(3), vec![0]);
        assert_eq!(e.false_negatives(1), vec![0, 1]);
        assert!(e.false_negatives(4).is_empty());
    }

    #[test]
    fn untracked_points_never_accumulate() {
        let mut e = PartialNeighborMap::new();
        e.update(5, &[1, 2, 3]);
        assert!(e.is_empty());
        assert_eq!(e.partial_neighbors(1).count(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut e = PartialNeighborMap::new();
        e.register_stop_point(3);
        e.update(8, &[3]);
        let json = serde_json::to_string(&e).unwrap();
        let back: PartialNeighborMap = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
