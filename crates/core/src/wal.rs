//! Append-only write-ahead log for the mutable serving plane.
//!
//! Every mutation of a [`crate::MutablePipeline`] — an inserted row or a
//! deleted dense id — is appended here **before** it is applied to the
//! in-memory delta segment, so a crash can never lose an acknowledged
//! write: on reopen, [`Wal::open`] replays every intact record and hands
//! the tail back to the pipeline to rebuild its delta state.
//!
//! # Wire format (log format version 1)
//!
//! All integers little-endian. The file starts with a fixed header and is
//! followed by back-to-back record frames:
//!
//! ```text
//! header   magic     4 bytes  b"LAFW"
//!          version   u32      currently 1
//! record   body_len  u32      length of the body that follows (≥ 9)
//!          body      lsn      u64   strictly increasing per log
//!                    kind     u8    1 = insert, 2 = delete
//!                    payload  kind-specific (see below)
//!          crc       u32      CRC-32 of the body bytes
//! ```
//!
//! Insert payloads are the raw `f32` row (`dim × 4` bytes); delete payloads
//! are the target's dense live id as a `u64`.
//!
//! # Torn-tail recovery
//!
//! A crash mid-append leaves a partial frame (or a frame whose CRC does not
//! match) at the end of the log. [`Wal::open`] scans frames from the start
//! and stops at the **first** one that is short, fails its CRC, is
//! malformed, or breaks LSN monotonicity; the file is truncated back to the
//! last intact frame and the write cursor resumes there. Everything before
//! the bad frame — the committed prefix — is replayed; nothing after it can
//! have been acknowledged, because acknowledgement happens only after the
//! full frame is written.

use crate::snapshot::{crc32, SnapshotError};
use bytes::{Buf, BufMut};
use laf_vector::fault;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes prefixing a write-ahead log file.
pub const WAL_MAGIC: &[u8; 4] = b"LAFW";
/// Current log format version. [`Wal::open`] rejects any other.
pub const WAL_VERSION: u32 = 1;

/// Byte length of the file header (magic + version); the log's first frame
/// starts here, so an empty log is exactly this long.
pub const HEADER_LEN: u64 = 8;
const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Insert a row (appended to the delta segment).
    Insert(Vec<f32>),
    /// Delete the row with this **dense live id** (see
    /// [`laf_vector::TombstoneSet`] for the id space; dense ids are stable
    /// across compaction, which is what makes replaying this record over a
    /// newer base well-defined).
    Delete(u64),
}

/// A replayed record: the mutation plus the LSN it committed at.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Log sequence number, strictly increasing within a log.
    pub lsn: u64,
    /// The logged mutation.
    pub op: WalOp,
}

/// Append-only, CRC-framed write-ahead log.
///
/// See the [module docs](self) for the wire format and recovery contract.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_lsn: u64,
    /// Byte length of the intact log (header + committed frames).
    end: u64,
    /// Set when a failed append could not be rolled back: the bytes past
    /// `end` (and the file cursor) are in an unknown state, so further
    /// appends could land after garbage and be silently dropped by the next
    /// recovery. A poisoned log refuses all appends.
    poisoned: bool,
}

impl Wal {
    /// Open (or create) the log at `path`, replaying every intact record.
    ///
    /// Returns the log positioned for appending plus the committed records
    /// in order. A torn or corrupt tail is truncated away (see the [module
    /// docs](self)); the next assigned LSN is one past the largest replayed.
    ///
    /// # Errors
    /// Returns [`SnapshotError`] on I/O failures or a bad header (wrong
    /// magic or unsupported version) — header damage means the file is not
    /// a recoverable log, unlike a torn tail.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(Self, Vec<WalRecord>), SnapshotError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len == 0 {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.put_slice(WAL_MAGIC);
            header.put_u32_le(WAL_VERSION);
            file.write_all(&header)?;
            file.sync_data()?;
            return Ok((
                Self {
                    file,
                    path,
                    next_lsn: 1,
                    end: HEADER_LEN,
                    poisoned: false,
                },
                Vec::new(),
            ));
        }

        let mut bytes = Vec::with_capacity(file_len as usize);
        file.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_LEN as usize {
            return Err(SnapshotError::Malformed(format!(
                "write-ahead log {} is shorter than its header",
                path.display()
            )));
        }
        if &bytes[..4] != WAL_MAGIC {
            return Err(SnapshotError::Malformed(format!(
                "write-ahead log {} has bad magic {:?}",
                path.display(),
                &bytes[..4]
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != WAL_VERSION {
            return Err(SnapshotError::Malformed(format!(
                "write-ahead log version {version} unsupported (this reader supports {WAL_VERSION})"
            )));
        }

        let mut records = Vec::new();
        let mut good_end = HEADER_LEN as usize;
        let mut last_lsn = 0u64;
        let mut cursor = good_end;
        while let Some((record, next)) = decode_frame(&bytes, cursor) {
            if record.lsn <= last_lsn {
                break; // LSN went backwards: treat as corruption from here on.
            }
            last_lsn = record.lsn;
            records.push(record);
            good_end = next;
            cursor = next;
        }
        if good_end as u64 != file_len {
            // Torn or corrupt tail: drop it so the next append starts clean.
            file.set_len(good_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good_end as u64))?;
        Ok((
            Self {
                file,
                path,
                next_lsn: last_lsn + 1,
                end: good_end as u64,
                poisoned: false,
            },
            records,
        ))
    }

    /// Raise the next assigned LSN so every future [`Wal::append`] commits
    /// strictly past `floor`. A no-op when the log's sequence is already
    /// beyond it.
    ///
    /// [`crate::MutablePipeline::open`] calls this with the manifest's
    /// `base_lsn`: compaction truncates the log but the manifest still
    /// records that LSNs `<= base_lsn` are folded into the base, so a log
    /// reopened empty must resume numbering past that point — otherwise new
    /// writes would commit at already-folded LSNs and the next replay would
    /// silently skip them.
    pub fn set_lsn_floor(&mut self, floor: u64) {
        self.next_lsn = self.next_lsn.max(floor.saturating_add(1));
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The LSN the next [`Wal::append`] will assign.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Byte length of the committed log (header plus intact frames).
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// Append one mutation, returning the LSN it committed at.
    ///
    /// The frame is written with a single `write_all`; durability against
    /// power loss additionally requires [`Wal::sync`]. A crash mid-append
    /// leaves a torn tail that the next [`Wal::open`] truncates away.
    ///
    /// # Errors
    /// Returns [`SnapshotError`] on I/O failures. A failed append is rolled
    /// back (the file is restored to the last committed frame) so later
    /// appends start clean; if the rollback itself fails the log is
    /// **poisoned** and every further append fails fast — otherwise a later
    /// frame would land after the partial bytes and recovery, truncating at
    /// the first corrupt frame, would silently drop it.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, SnapshotError> {
        if self.poisoned {
            return Err(SnapshotError::Malformed(format!(
                "write-ahead log {} is poisoned: a failed append could not \
                 be rolled back (reopen the log to recover)",
                self.path.display()
            )));
        }
        let lsn = self.next_lsn;
        let mut body = Vec::new();
        body.put_u64_le(lsn);
        match op {
            WalOp::Insert(row) => {
                body.put_u8(KIND_INSERT);
                for &x in row {
                    body.put_f32_le(x);
                }
            }
            WalOp::Delete(id) => {
                body.put_u8(KIND_DELETE);
                body.put_u64_le(*id);
            }
        }
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.put_u32_le(body.len() as u32);
        frame.put_slice(&body);
        frame.put_u32_le(crc32(&body));
        // Failpoint `wal.append.partial`: model a crash mid-`write_all` by
        // leaving a genuine torn frame prefix on disk. The log is poisoned
        // rather than rolled back — exactly the state a real partial write
        // that cannot be restored leaves behind — so the torn tail survives
        // until the next `Wal::open` truncates it away.
        if fault::fire("wal.append.partial") {
            let cut = (frame.len() / 2).max(1);
            let _ = self.file.write_all(&frame[..cut]);
            self.poisoned = true;
            return Err(fault::injected("wal.append.partial").into());
        }
        if let Err(err) = self.file.write_all(&frame) {
            self.rollback_to_committed();
            return Err(err.into());
        }
        self.next_lsn = lsn + 1;
        self.end += frame.len() as u64;
        Ok(lsn)
    }

    /// Restore the log to its last committed frame after a failed append:
    /// drop any partial frame bytes past `end` and park the cursor back at
    /// `end` (a failed `write_all` leaves both in an indeterminate state).
    /// Poisons the log when the restore itself fails.
    fn rollback_to_committed(&mut self) {
        let restored = self
            .file
            .set_len(self.end)
            .and_then(|()| self.file.seek(SeekFrom::Start(self.end)))
            .is_ok();
        if !restored {
            self.poisoned = true;
        }
    }

    /// Flush appended frames to stable storage (`fdatasync`).
    ///
    /// # Errors
    /// Returns [`SnapshotError`] on I/O failures.
    pub fn sync(&self) -> Result<(), SnapshotError> {
        // Failpoint `wal.sync`: a transient fdatasync failure. The log
        // itself stays healthy — callers own the retry policy.
        if fault::fire("wal.sync") {
            return Err(fault::injected("wal.sync").into());
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// Truncate the log back to its header after a compaction has folded
    /// every record into the base snapshot. LSNs are **not** reset: they
    /// keep increasing across compactions, so a record's LSN always orders
    /// it against the manifest's `base_lsn`.
    ///
    /// # Errors
    /// Returns [`SnapshotError`] on I/O failures.
    pub fn truncate(&mut self) -> Result<(), SnapshotError> {
        self.file.set_len(HEADER_LEN)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.end = HEADER_LEN;
        Ok(())
    }
}

/// Decode the frame starting at `at`. Returns the record and the offset of
/// the next frame, or `None` when the bytes from `at` on do not form an
/// intact frame (short, bad CRC, unknown kind, malformed payload).
fn decode_frame(bytes: &[u8], at: usize) -> Option<(WalRecord, usize)> {
    let mut rest = bytes.get(at..)?;
    if rest.remaining() < 4 {
        return None;
    }
    let body_len = rest.get_u32_le() as usize;
    if body_len < 9 || rest.remaining() < body_len + 4 {
        return None;
    }
    let body = &bytes[at + 4..at + 4 + body_len];
    let stored_crc = u32::from_le_bytes(
        bytes[at + 4 + body_len..at + 8 + body_len]
            .try_into()
            .ok()?,
    );
    if crc32(body) != stored_crc {
        return None;
    }
    let mut body_buf = body;
    let lsn = body_buf.get_u64_le();
    let kind = body_buf.get_u8();
    let op = match kind {
        KIND_INSERT => {
            if !body_buf.remaining().is_multiple_of(4) {
                return None;
            }
            let mut row = Vec::with_capacity(body_buf.remaining() / 4);
            while body_buf.remaining() > 0 {
                row.push(body_buf.get_f32_le());
            }
            WalOp::Insert(row)
        }
        KIND_DELETE => {
            if body_buf.remaining() != 8 {
                return None;
            }
            WalOp::Delete(body_buf.get_u64_le())
        }
        _ => return None,
    };
    Some((WalRecord { lsn, op }, at + 8 + body_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("laf_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.wal", std::process::id()))
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let path = temp_path("round_trip");
        std::fs::remove_file(&path).ok();
        let ops = [
            WalOp::Insert(vec![1.0, 2.0, 3.0]),
            WalOp::Delete(7),
            WalOp::Insert(vec![-0.5, 0.25, 4.0]),
        ];
        {
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            assert!(replayed.is_empty());
            for (i, op) in ops.iter().enumerate() {
                assert_eq!(wal.append(op).unwrap(), i as u64 + 1);
            }
            wal.sync().unwrap();
        }
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(wal.next_lsn(), 4);
        assert_eq!(replayed.len(), 3);
        for (i, rec) in replayed.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64 + 1);
            assert_eq!(rec.op, ops[i]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_committed_prefix() {
        let path = temp_path("torn_tail");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for i in 0..5 {
                wal.append(&WalOp::Insert(vec![i as f32, 0.0])).unwrap();
            }
            wal.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Cut mid-way through the last frame (every frame here is 8+9+8=25
        // bytes: u32 len + u64 lsn + u8 kind + 2×f32 + u32 crc).
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 4, "torn last record dropped");
        assert_eq!(wal.next_lsn(), 5);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            full.len() as u64 - 25,
            "file truncated back to the last intact frame"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_drops_the_record_and_its_suffix() {
        let path = temp_path("corrupt_crc");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for i in 0..4 {
                wal.append(&WalOp::Delete(i)).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte in the second record. Frames are 8+17+4? no:
        // delete body = 8 lsn + 1 kind + 8 id = 17, frame = 4+17+4 = 25.
        let second_payload = 8 + 25 + 4 + 10;
        bytes[second_payload] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1, "records after the corrupt one dropped");
        assert_eq!(replayed[0].op, WalOp::Delete(0));
        assert_eq!(wal.next_lsn(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_keeps_lsns_monotonic() {
        let path = temp_path("truncate");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalOp::Delete(0)).unwrap();
        wal.append(&WalOp::Delete(1)).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes(), 8);
        assert_eq!(wal.append(&WalOp::Delete(2)).unwrap(), 3);
        drop(wal);
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].lsn, 3);
        assert_eq!(wal.next_lsn(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lsn_floor_resumes_numbering_past_a_folded_prefix() {
        let path = temp_path("lsn_floor");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        // A fresh (or post-compaction-reopened) log starts at LSN 1; a floor
        // simulating a manifest with base_lsn = 7 must push it past 7.
        assert_eq!(wal.next_lsn(), 1);
        wal.set_lsn_floor(7);
        assert_eq!(wal.next_lsn(), 8);
        // A floor at or below the current sequence is a no-op.
        wal.set_lsn_floor(3);
        assert_eq!(wal.next_lsn(), 8);
        assert_eq!(wal.append(&WalOp::Delete(0)).unwrap(), 8);
        drop(wal);
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].lsn, 8);
        assert_eq!(wal.next_lsn(), 9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_append_rolls_back_to_the_committed_frame() {
        let path = temp_path("rollback");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalOp::Insert(vec![1.0, 2.0])).unwrap();
        wal.append(&WalOp::Delete(0)).unwrap();
        // Simulate the state a failed `write_all` leaves behind — partial
        // frame bytes past `end` with the cursor somewhere after them — then
        // run the same restore the append error path runs.
        wal.file.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        wal.rollback_to_committed();
        assert!(!wal.poisoned, "restore on a healthy file must succeed");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            wal.len_bytes(),
            "partial bytes dropped from disk"
        );
        // The next append lands directly after the committed prefix and the
        // whole log (including it) survives a reopen intact.
        wal.append(&WalOp::Delete(1)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 3, "no record lost to the partial write");
        assert_eq!(replayed[2].op, WalOp::Delete(1));
        assert_eq!(wal.next_lsn(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poisoned_log_refuses_appends() {
        let path = temp_path("poisoned");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalOp::Delete(0)).unwrap();
        wal.poisoned = true;
        let err = wal.append(&WalOp::Delete(1)).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)));
        // Reopening recovers: the committed prefix replays and appends work.
        drop(wal);
        let (mut wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        wal.append(&WalOp::Delete(1)).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_header_is_an_error_not_a_truncation() {
        let path = temp_path("bad_header");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00").unwrap();
        assert!(matches!(Wal::open(&path), Err(SnapshotError::Malformed(_))));
        std::fs::remove_file(&path).ok();
    }
}
