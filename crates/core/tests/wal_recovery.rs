//! Crash-recovery kill-point sweep: apply a write workload while recording
//! the WAL byte offset after every committed operation, then simulate a
//! crash at **every byte length** of the log — frame boundaries (clean
//! crash after a sync) and every mid-record offset (torn tail) — by
//! truncating a copy of the directory and reopening. Replay must recover
//! exactly the prefix of operations whose frames are fully on disk, with
//! live rows bit-identical to a never-crashed pipeline that only applied
//! that prefix, and the reopened log must keep accepting writes.

use laf_cardest::{NetConfig, TrainingSetBuilder};
use laf_core::wal::HEADER_LEN;
use laf_core::{LafConfig, LafPipeline, MutablePipeline};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::Dataset;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

const DIM: usize = 6;

/// Serialize every test in this binary. The failpoint registry is
/// process-wide, so a fault plan armed by one test must never be consumed
/// by another test's compact/sync running on a sibling thread; the
/// non-fault tests take the same lock so the exclusion is total.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[derive(Clone, Copy)]
enum Op {
    Insert(usize), // row index into the extra dataset
    Delete(usize), // dense id at the time of the op
}

fn workload() -> Vec<Op> {
    vec![
        Op::Insert(0),
        Op::Insert(1),
        Op::Delete(2),
        Op::Insert(2),
        Op::Delete(0),
        Op::Delete(40),
        Op::Insert(3),
        Op::Insert(4),
        Op::Delete(41),
        Op::Insert(5),
    ]
}

fn gen_data(n: usize, seed: u64) -> Dataset {
    EmbeddingMixtureConfig {
        n_points: n,
        dim: DIM,
        clusters: 2,
        noise_fraction: 0.1,
        seed,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .0
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("laf_wal_recovery_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn apply(mutable: &mut MutablePipeline, op: Op, extra: &Dataset) {
    match op {
        Op::Insert(i) => {
            mutable.insert(extra.row(i)).unwrap();
        }
        Op::Delete(d) => {
            mutable.delete(d).unwrap();
        }
    }
}

#[test]
fn every_kill_point_recovers_the_committed_prefix() {
    let _guard = exclusive();
    let (data, _) = EmbeddingMixtureConfig {
        n_points: 50,
        dim: DIM,
        clusters: 2,
        noise_fraction: 0.1,
        seed: 11,
        ..Default::default()
    }
    .generate()
    .unwrap();
    let trained = LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(30),
            ..Default::default()
        })
        .train(data)
        .unwrap();

    let extra = gen_data(8, 21);
    let dir = unique_dir("source");
    let mut mutable = MutablePipeline::create(&dir, &trained).unwrap();

    // boundaries[i] = WAL byte length once the first i ops are committed.
    let mut boundaries = vec![mutable.wal_len_bytes()];
    for &op in &workload() {
        apply(&mut mutable, op, &extra);
        boundaries.push(mutable.wal_len_bytes());
    }
    mutable.sync().unwrap();
    assert_eq!(boundaries[0], HEADER_LEN, "log starts empty");
    let full_len = *boundaries.last().unwrap();
    drop(mutable);

    // Expected state for every committed prefix, built by a never-crashed
    // pipeline that stops after `i` ops.
    let mut expected: Vec<Dataset> = Vec::new();
    for i in 0..=workload().len() {
        let pdir = unique_dir("prefix");
        let mut p = MutablePipeline::create(&pdir, &trained).unwrap();
        for &op in &workload()[..i] {
            apply(&mut p, op, &extra);
        }
        expected.push(p.live_dataset().unwrap());
        std::fs::remove_dir_all(&pdir).ok();
    }

    for kill in HEADER_LEN..=full_len {
        let cdir = unique_dir("kill");
        copy_dir(&dir, &cdir);
        let wal_path = cdir.join("wal.log");
        OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(kill)
            .unwrap();

        let mut recovered = MutablePipeline::open(&cdir).unwrap();
        // A record is recovered iff its frame is fully on disk.
        let committed = boundaries.iter().filter(|&&b| b <= kill).count() - 1;
        assert_eq!(
            recovered.live_dataset().unwrap().as_flat(),
            expected[committed].as_flat(),
            "kill at byte {kill}: exactly {committed} ops survive, bit-identically"
        );
        // The torn tail is gone from disk, and the log accepts new writes
        // that themselves survive a clean reopen.
        assert_eq!(
            std::fs::metadata(&wal_path).unwrap().len(),
            boundaries[committed],
            "kill at byte {kill}: torn tail truncated to the last good frame"
        );
        recovered.insert(extra.row(6)).unwrap();
        recovered.sync().unwrap();
        let rows_after = recovered.live_dataset().unwrap();
        drop(recovered);
        let reread = MutablePipeline::open(&cdir).unwrap();
        assert_eq!(
            reread.live_dataset().unwrap().as_flat(),
            rows_after.as_flat(),
            "kill at byte {kill}: post-recovery writes are durable"
        );
        std::fs::remove_dir_all(&cdir).ok();
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_after_compaction_skips_folded_records() {
    let _guard = exclusive();
    let (data, _) = EmbeddingMixtureConfig {
        n_points: 40,
        dim: DIM,
        clusters: 2,
        noise_fraction: 0.1,
        seed: 13,
        ..Default::default()
    }
    .generate()
    .unwrap();
    let trained = LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(30),
            ..Default::default()
        })
        .train(data)
        .unwrap();

    let extra = gen_data(8, 22);
    let dir = unique_dir("compacted");
    let mut mutable = MutablePipeline::create(&dir, &trained).unwrap();
    for &op in &workload()[..5] {
        apply(&mut mutable, op, &extra);
    }
    mutable.compact().unwrap();
    let gen = mutable.generation();
    for &op in &workload()[5..] {
        apply(&mut mutable, op, &extra);
    }
    mutable.sync().unwrap();
    let want = mutable.live_dataset().unwrap();
    drop(mutable);

    let reopened = MutablePipeline::open(&dir).unwrap();
    assert_eq!(reopened.generation(), gen, "manifest generation persists");
    assert_eq!(
        reopened.live_dataset().unwrap().as_flat(),
        want.as_flat(),
        "replay applies only post-compaction records on the new base"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Compaction truncates the WAL, so a reopened log restarts its sequence —
/// which must resume *past* the manifest's `base_lsn`, or writes after the
/// reopen would commit at already-folded LSNs and the next replay would
/// silently drop them (and a further compaction would regress `base_lsn`).
#[test]
fn writes_after_a_post_compaction_reopen_survive_the_next_reopen() {
    let _guard = exclusive();
    let (data, _) = EmbeddingMixtureConfig {
        n_points: 40,
        dim: DIM,
        clusters: 2,
        noise_fraction: 0.1,
        seed: 17,
        ..Default::default()
    }
    .generate()
    .unwrap();
    let trained = LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(30),
            ..Default::default()
        })
        .train(data)
        .unwrap();

    let extra = gen_data(8, 23);
    let dir = unique_dir("post_compaction_writes");
    let mut mutable = MutablePipeline::create(&dir, &trained).unwrap();
    for &op in &workload()[..5] {
        apply(&mut mutable, op, &extra);
    }
    mutable.compact().unwrap();
    let base_lsn = mutable.last_lsn();
    drop(mutable);

    // Reopen after the compaction: the (empty) log must hand out LSNs past
    // the folded prefix the manifest records.
    let mut reopened = MutablePipeline::open(&dir).unwrap();
    let lsn = reopened.insert(extra.row(6)).unwrap();
    assert!(
        lsn > base_lsn,
        "post-reopen write committed at LSN {lsn}, inside the folded prefix (base_lsn {base_lsn})"
    );
    reopened.delete(0).unwrap();
    reopened.sync().unwrap();
    let want = reopened.live_dataset().unwrap();
    drop(reopened);

    // Both writes must replay on the next open...
    let mut again = MutablePipeline::open(&dir).unwrap();
    assert_eq!(
        again.live_dataset().unwrap().as_flat(),
        want.as_flat(),
        "acknowledged writes lost across compact -> reopen -> write -> reopen"
    );
    // ...and a further compaction must not regress base_lsn below them.
    again.compact().unwrap();
    assert!(
        again.last_lsn() >= lsn,
        "compaction regressed the LSN frontier"
    );
    drop(again);
    let last = MutablePipeline::open(&dir).unwrap();
    assert_eq!(
        last.live_dataset().unwrap().as_flat(),
        want.as_flat(),
        "state diverged across the second compaction"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Failpoint-driven compaction kill-point sweep: compact() consults three
/// named sites on its way to the manifest flip — `snapshot.save.fsync`
/// (the new base's durability point), `compact.dir_fsync` (the directory
/// entry's durability point) and `manifest.rename` (the atomic flip
/// itself). Crash at each: the typed error must name the failpoint, a
/// reopen must land on exactly the pre-compaction state (all three sites
/// precede the flip — never a mix of old WAL and new base), any stray
/// next-generation base file must be tolerated, and the next compaction —
/// faults cleared — must succeed and survive another reopen.
#[cfg(feature = "fault-injection")]
#[test]
fn every_compact_failpoint_leaves_a_recoverable_store() {
    use laf_core::fault::{self, FaultMode, FaultPlan};

    let _guard = exclusive();
    let (data, _) = EmbeddingMixtureConfig {
        n_points: 40,
        dim: DIM,
        clusters: 2,
        noise_fraction: 0.1,
        seed: 19,
        ..Default::default()
    }
    .generate()
    .unwrap();
    let trained = LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(30),
            ..Default::default()
        })
        .train(data)
        .unwrap();
    let extra = gen_data(8, 29);

    for (i, site) in [
        "snapshot.save.fsync",
        "compact.dir_fsync",
        "manifest.rename",
    ]
    .into_iter()
    .enumerate()
    {
        let dir = unique_dir(&format!("compact_kill_{i}"));
        let mut mutable = MutablePipeline::create(&dir, &trained).unwrap();
        for &op in &workload()[..5] {
            apply(&mut mutable, op, &extra);
        }
        mutable.sync().unwrap();
        let pre = mutable.live_dataset().unwrap();
        let gen0 = mutable.generation();
        let lsn0 = mutable.last_lsn();

        fault::install(FaultPlan::new(97).with_site(site, FaultMode::OnceAt(0)));
        let err = mutable.compact().unwrap_err();
        fault::clear();
        assert!(
            err.to_string().contains(site),
            "compact error must name the failpoint `{site}`: {err}"
        );
        // Simulated crash: abandon the in-memory handle, recover from disk.
        drop(mutable);

        let mut recovered = MutablePipeline::open(&dir).unwrap();
        assert_eq!(
            recovered.generation(),
            gen0,
            "kill at `{site}`: a pre-flip failure must not advance the manifest"
        );
        assert_eq!(
            recovered.last_lsn(),
            lsn0,
            "kill at `{site}`: the committed WAL prefix must replay in full"
        );
        assert_eq!(
            recovered.live_dataset().unwrap().as_flat(),
            pre.as_flat(),
            "kill at `{site}`: recovered rows diverge from the pre-compaction state"
        );

        // Faults cleared, the next compaction must go through (overwriting
        // any stray base file the failed attempt left behind) and the
        // result must survive a further clean reopen.
        recovered.compact().unwrap();
        assert!(recovered.generation() > gen0, "kill at `{site}`");
        drop(recovered);
        let after = MutablePipeline::open(&dir).unwrap();
        assert_eq!(
            after.live_dataset().unwrap().as_flat(),
            pre.as_flat(),
            "kill at `{site}`: state diverged across the recovery compaction"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
