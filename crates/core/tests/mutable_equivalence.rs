//! The mutable-plane read contract: a [`MutablePipeline`] with interleaved
//! inserts and deletes must answer `range` / `range_count` / `knn`
//! **bit-identically** to a from-scratch engine (and pipeline) built over
//! the equivalent final dataset — before compaction, after a reopen
//! (WAL-replay path), after compaction, and after further writes on the
//! compacted base. Exercised for every exact engine configuration (the
//! k-means tree visiting every leaf and IVF probing every list are exact).
//! `knn` distance bits match because the merge path scores delta rows
//! with an engine of the same kind as the base, so every (distance, id)
//! pair is the same floating-point evaluation a from-scratch engine
//! would produce.

use laf_cardest::{NetConfig, TrainingSetBuilder};
use laf_core::{LafConfig, LafPipeline, MutablePipeline};
use laf_index::{build_engine, EngineChoice};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::Dataset;
use std::path::PathBuf;

const DIM: usize = 8;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "laf_mutable_equivalence_{tag}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn gen_data(n: usize, seed: u64) -> Dataset {
    EmbeddingMixtureConfig {
        n_points: n,
        dim: DIM,
        clusters: 3,
        noise_fraction: 0.15,
        seed,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .0
}

fn train(config: LafConfig) -> LafPipeline {
    LafPipeline::builder(config)
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(40),
            ..Default::default()
        })
        .train(gen_data(120, 5))
        .unwrap()
}

/// Assert every read answer matches a from-scratch engine over the live
/// rows, bit for bit.
fn assert_matches_from_scratch(
    mutable: &MutablePipeline,
    choice: EngineChoice,
    config: &LafConfig,
    stage: &str,
) {
    let live = mutable.live_dataset().unwrap();
    assert_eq!(live.len(), mutable.len(), "{stage}: live row count");
    let fresh = build_engine(choice, &live, config.metric, config.eps);
    let queries = gen_data(12, 99);
    for q in queries.rows() {
        for eps in [0.15f32, 0.3, 0.5] {
            assert_eq!(
                mutable.range(q, eps),
                fresh.range(q, eps),
                "{stage}: range {choice:?} eps={eps}"
            );
            assert_eq!(
                mutable.range_count(q, eps),
                fresh.range_count(q, eps),
                "{stage}: range_count {choice:?} eps={eps}"
            );
        }
        let got = mutable.knn(q, 7);
        let want = fresh.knn(q, 7);
        assert_eq!(got.len(), want.len(), "{stage}: knn len {choice:?}");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.index, w.index, "{stage}: knn index {choice:?}");
            assert_eq!(
                g.dist.to_bits(),
                w.dist.to_bits(),
                "{stage}: knn dist bits {choice:?}"
            );
        }
    }
}

/// Interleave inserts and deletes touching base rows, fresh delta rows, and
/// re-deletions of shifted ids.
fn mutate(mutable: &mut MutablePipeline) {
    let extra = gen_data(30, 6);
    for i in 0..10 {
        mutable.insert(extra.row(i)).unwrap();
    }
    mutable.delete(3).unwrap(); // base row
    mutable.delete(0).unwrap(); // base row, shifts everything down
    mutable.delete(mutable.len() - 2).unwrap(); // delta row
    for i in 10..16 {
        mutable.insert(extra.row(i)).unwrap();
    }
    mutable.delete(60).unwrap();
    mutable.delete(60).unwrap(); // the next row, after the shift
    mutable.delete(mutable.len() - 1).unwrap(); // newest delta row
}

fn run_scenario(tag: &str, choice: EngineChoice) {
    let config = LafConfig {
        engine: choice,
        ..LafConfig::new(0.3, 4, 1.0)
    };
    let trained = train(config.clone());
    let dir = unique_dir(tag);
    let mut mutable = MutablePipeline::create(&dir, &trained).unwrap();
    assert_eq!(mutable.len(), 120);

    mutate(&mut mutable);
    assert_matches_from_scratch(&mutable, choice, &config, "pre-compaction");
    let live_before = mutable.live_dataset().unwrap();

    // Reopen: the WAL-replay path must rebuild the identical state.
    mutable.sync().unwrap();
    drop(mutable);
    let mut mutable = MutablePipeline::open(&dir).unwrap();
    assert_eq!(
        mutable.live_dataset().unwrap().as_flat(),
        live_before.as_flat(),
        "replayed state matches the in-memory state bit for bit"
    );
    assert_matches_from_scratch(&mutable, choice, &config, "post-reopen");

    // Compaction folds everything into a fresh base without changing any
    // answer: dense ids are stable.
    mutable.compact().unwrap();
    assert_eq!(mutable.delta_len(), 0);
    assert_eq!(mutable.deleted(), 0);
    assert_eq!(
        mutable.live_dataset().unwrap().as_flat(),
        live_before.as_flat(),
        "compaction preserves the live rows in dense order"
    );
    assert_matches_from_scratch(&mutable, choice, &config, "post-compaction");

    // Writes keep working against the compacted base.
    mutate(&mut mutable);
    assert_matches_from_scratch(&mutable, choice, &config, "post-compaction writes");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn linear_matches_from_scratch() {
    run_scenario("linear", EngineChoice::Linear);
}

#[test]
fn grid_matches_from_scratch() {
    run_scenario("grid", EngineChoice::Grid { cell_side: 0.3 });
}

#[test]
fn exhaustive_kmeans_tree_matches_from_scratch() {
    run_scenario(
        "kmeans",
        EngineChoice::KMeansTree {
            branching: 3,
            leaf_ratio: 1.0,
        },
    );
}

#[test]
fn exhaustive_ivf_matches_from_scratch() {
    run_scenario(
        "ivf",
        EngineChoice::Ivf {
            nlist: 4,
            nprobe: 4,
        },
    );
}

#[test]
fn cover_tree_matches_from_scratch() {
    run_scenario("cover", EngineChoice::CoverTree { basis: 2.0 });
}

#[test]
fn mutable_answers_match_a_from_scratch_pipeline() {
    // The full-pipeline flavor of the same contract: a `LafPipeline`
    // assembled over the live rows (same estimator, so the serving stack
    // around the engine is held fixed) answers through its engine exactly
    // like the mutable merge path.
    let config = LafConfig::new(0.3, 4, 1.0);
    let trained = train(config.clone());
    let dir = unique_dir("pipeline");
    let mut mutable = MutablePipeline::create(&dir, &trained).unwrap();
    mutate(&mut mutable);
    let fresh = LafPipeline::from_parts(
        config,
        mutable.live_dataset().unwrap(),
        mutable.base().estimator().clone(),
    );
    let engine = fresh.engine();
    let queries = gen_data(8, 77);
    for q in queries.rows() {
        assert_eq!(mutable.range(q, 0.3), engine.get().range(q, 0.3));
        assert_eq!(
            mutable.range_count(q, 0.3),
            engine.get().range_count(q, 0.3)
        );
        let (got, want) = (mutable.knn(q, 5), engine.get().knn(q, 5));
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!((g.index, g.dist.to_bits()), (w.index, w.dist.to_bits()));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delete_validates_the_dense_id_space() {
    let trained = train(LafConfig::new(0.3, 4, 1.0));
    let dir = unique_dir("validation");
    let mut mutable = MutablePipeline::create(&dir, &trained).unwrap();
    let n = mutable.len();
    assert!(mutable.delete(n).is_err(), "one past the end is rejected");
    assert!(mutable.insert(&[0.0; 3]).is_err(), "wrong dim is rejected");
    assert_eq!(mutable.len(), n, "failed writes are not applied");
    mutable.delete(n - 1).unwrap();
    assert!(mutable.delete(n - 1).is_err(), "id space shrank");
    std::fs::remove_dir_all(&dir).ok();
}
