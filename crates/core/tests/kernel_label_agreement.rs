//! End-to-end kernel-mode agreement: LAF-DBSCAN's labels (and stats) must be
//! byte-identical whether the range-query engine runs the generic or the
//! specialized distance kernels, for every engine/metric combination.

use laf_core::{LafConfig, LafDbscan};
use laf_index::{build_engine_with_mode, EngineChoice, KernelMode};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::{Dataset, Metric};

fn eps_for(metric: Metric) -> f32 {
    metric.equivalent_threshold(0.25)
}

fn data() -> Dataset {
    EmbeddingMixtureConfig {
        n_points: 260,
        dim: 10,
        clusters: 5,
        noise_fraction: 0.2,
        seed: 77,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .0
}

#[test]
fn cluster_with_stats_labels_are_byte_identical_across_kernel_modes() {
    let data = data();
    let choices = [
        EngineChoice::Linear,
        EngineChoice::Grid {
            cell_side: 1.0 / (data.dim() as f32).sqrt(),
        },
        EngineChoice::KMeansTree {
            branching: 4,
            leaf_ratio: 0.8,
        },
        EngineChoice::Ivf {
            nlist: 6,
            nprobe: 3,
        },
    ];
    for metric in Metric::ALL {
        let eps = eps_for(metric);
        let estimator = laf_cardest::ExactEstimator::new(&data, metric);
        for choice in choices {
            let cfg = LafConfig {
                eps,
                metric,
                engine: choice,
                ..LafConfig::new(eps, 4, 1.0)
            };
            let laf = LafDbscan::new(cfg, &estimator);
            let spec_engine =
                build_engine_with_mode(choice, &data, metric, eps, KernelMode::Specialized);
            let generic_engine =
                build_engine_with_mode(choice, &data, metric, eps, KernelMode::Generic);
            let (spec, spec_stats) = laf.cluster_with_stats_using(&data, spec_engine.as_ref());
            let (generic, generic_stats) =
                laf.cluster_with_stats_using(&data, generic_engine.as_ref());
            assert_eq!(
                spec.labels(),
                generic.labels(),
                "{metric:?} {choice:?}: labels diverged between kernel modes"
            );
            assert_eq!(
                spec_stats.skipped_range_queries, generic_stats.skipped_range_queries,
                "{metric:?} {choice:?}: gate behavior diverged"
            );
            assert_eq!(
                spec.distance_evaluations, generic.distance_evaluations,
                "{metric:?} {choice:?}: evaluation accounting diverged"
            );
        }
    }
}
