//! Offline vendored stand-in for the `memmap2` crate: the read-only
//! [`Mmap`] subset the snapshot loader uses.
//!
//! On 64-bit Linux the mapping is a real `mmap(2)` (`PROT_READ`,
//! `MAP_SHARED`) obtained through raw `extern "C"` declarations — no libc
//! crate, matching this workspace's offline-vendoring convention — so every
//! process mapping the same snapshot file shares one set of page-cache
//! pages. On other targets (and for empty files, which `mmap` rejects) the
//! type transparently falls back to reading the file into an owned buffer:
//! callers get the same `&[u8]` view either way, just without the sharing.

#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod sys {
    //! Raw mmap/munmap bindings (LP64 Linux only: `off_t` is `i64`).
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
    }
}

/// The bytes backing an [`Mmap`]: a live kernel mapping where the platform
/// supports it, an owned copy of the file everywhere else.
enum Backing {
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    Raw {
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

/// A read-only memory map of an entire file.
///
/// Dereferences to `&[u8]`. The mapping (or fallback buffer) is released on
/// drop; `Send + Sync` because the view is immutable.
pub struct Mmap {
    backing: Backing,
}

// SAFETY: the mapping is PROT_READ and never mutated through this type, so
// concurrent shared access from any thread is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Safety
    /// The returned slice aliases the file's pages: if another process (or a
    /// later `set_len` on the same file) truncates the file while the map is
    /// live, touching the vanished pages raises `SIGBUS`. Callers must keep
    /// the file unmodified for the lifetime of the map — snapshot files are
    /// written once and then treated as immutable, which satisfies this.
    ///
    /// # Errors
    /// Propagates metadata/read failures and the raw `mmap` errno.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file exceeds usize"))?;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty owned buffer is
            // indistinguishable to callers.
            return Ok(Mmap {
                backing: Backing::Owned(Vec::new()),
            });
        }
        Self::map_inner(file, len)
    }

    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    unsafe fn map_inner(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let ptr = sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_SHARED,
            file.as_raw_fd(),
            0,
        );
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            backing: Backing::Raw {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    unsafe fn map_inner(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::{Read, Seek, SeekFrom};
        // The contract is "the file in its entirety", independent of the
        // handle's current cursor — rewind first (mmap ignores the cursor
        // too) and insist on exactly the metadata length, so a concurrent
        // resize surfaces as an error instead of a silently short view.
        let mut file = file;
        file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        if buf.len() != len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("expected {len} bytes, read {}", buf.len()),
            ));
        }
        Ok(Mmap {
            backing: Backing::Owned(buf),
        })
    }

    /// Length of the mapped file in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` when the mapped file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Base address of the view (page-aligned for real mappings).
    pub fn as_ptr(&self) -> *const u8 {
        self.as_slice().as_ptr()
    }

    /// `true` when backed by a live kernel mapping rather than the owned
    /// fallback buffer.
    pub fn is_kernel_mapping(&self) -> bool {
        match &self.backing {
            #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
            Backing::Raw { .. } => true,
            Backing::Owned(_) => false,
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
            // SAFETY: ptr/len come from a successful PROT_READ mmap that
            // stays live until drop; the map() contract forbids truncation.
            Backing::Raw { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(buf) => buf,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        match &self.backing {
            #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
            Backing::Raw { ptr, len } => {
                // SAFETY: exactly the region a successful mmap returned.
                unsafe { sys::munmap(*ptr as *mut std::ffi::c_void, *len) };
            }
            Backing::Owned(_) => {}
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("kernel_mapping", &self.is_kernel_mapping())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("memmap2_vendor_{}_{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp("basic", b"hello mapped world");
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert_eq!(&map[..], b"hello mapped world");
        assert_eq!(map.len(), 18);
        assert!(!map.is_empty());
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        {
            assert!(map.is_kernel_mapping());
            // mmap returns page-aligned addresses.
            assert_eq!(map.as_ptr() as usize % 4096, 0);
        }
        drop(map);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp("empty", b"");
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert!(map.is_empty());
        assert!(!map.is_kernel_mapping());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn map_outlives_the_file_handle_and_is_sendable() {
        let path = temp("outlive", &[7u8; 4096 * 3]);
        let map = {
            let file = File::open(&path).unwrap();
            unsafe { Mmap::map(&file).unwrap() }
        };
        // The fd may be closed; the mapping stays valid.
        let handle = std::thread::spawn(move || map.iter().map(|&b| b as u64).sum::<u64>());
        assert_eq!(handle.join().unwrap(), 7 * 4096 * 3);
        std::fs::remove_file(path).ok();
    }
}
