//! Offline vendored stand-in for the `rand` crate (0.8-style API).
//!
//! Implements exactly the surface this workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! with `gen_range`/`gen_bool`/`gen`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the real
//! `StdRng` (ChaCha12), but statistically solid and, critically,
//! deterministic for a given seed, which is all the reproduction relies on.

/// Core generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy (here: a time-derived seed; only
    /// used for non-reproducible convenience paths).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Types a range can be sampled from (`rand 0.8`'s `gen_range(range)` shape).
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, bound)` via rejection sampling (bound > 0).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        // Widening-multiply rejection method (Lemire).
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return m >> 64;
            }
        }
    } else {
        // Spans above u64::MAX only arise for full-width i128 arithmetic on
        // u64/i64 ranges; a double draw is uniform enough there.
        loop {
            let hi = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
            if hi < bound * (u128::MAX / bound) {
                return hi % bound;
            }
        }
    }
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Generate a uniformly random value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::standard(self) < p
    }

    /// Uniform sample of `T` (the `Standard` distribution).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations (subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience: a fresh time-seeded generator.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}
