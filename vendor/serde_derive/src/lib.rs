//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (neither is available offline): the
//! input item is parsed directly from [`proc_macro::TokenStream`] token
//! trees, and the generated impls are assembled as source strings and parsed
//! back into a token stream.
//!
//! Supported shapes (everything this workspace derives):
//!
//! * named-field structs, unit structs, single-field newtype structs;
//! * enums with unit variants and/or named-field variants, externally tagged
//!   by default or internally tagged via `#[serde(tag = "...")]`;
//! * container attributes `rename_all = "snake_case"`, `tag = "..."`;
//! * field attributes `skip`, `default`, `default = "path"`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model.
// ---------------------------------------------------------------------------

#[derive(Default, Debug)]
struct ContainerAttrs {
    rename_all_snake: bool,
    tag: Option<String>,
}

#[derive(Default, Debug)]
struct FieldAttrs {
    skip: bool,
    /// `Some(None)` = bare `default`, `Some(Some(path))` = `default = "path"`.
    default: Option<Option<String>>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Body {
    Unit,
    Newtype,
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Option<Vec<Field>>,
}

#[derive(Debug)]
struct Item {
    name: String,
    attrs: ContainerAttrs,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;

    let mut attrs = ContainerAttrs::default();
    collect_attrs(&tokens, &mut pos, |key, val| match (key, val) {
        ("rename_all", Some(v)) => {
            assert_eq!(
                v, "snake_case",
                "only rename_all = \"snake_case\" is supported"
            );
            attrs.rename_all_snake = true;
        }
        ("tag", Some(v)) => attrs.tag = Some(v.to_string()),
        other => panic!("unsupported container serde attribute {other:?}"),
    });

    skip_visibility(&tokens, &mut pos);
    let kind = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(peek_punct(&tokens, pos), Some('<')) {
        panic!("generic parameters are not supported by the vendored serde derive ({name})");
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            None => Body::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let commas = top_level_commas(&inner);
                assert_eq!(
                    commas, 0,
                    "only single-field tuple structs are supported ({name})"
                );
                Body::Newtype
            }
            other => panic!("unexpected struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive serde traits for item kind `{other}`"),
    };

    Item { name, attrs, body }
}

/// Consume leading `#[...]` attributes, reporting `serde(...)` entries as
/// `(key, Option<value>)` pairs to `on_serde`.
fn collect_attrs(
    tokens: &[TokenTree],
    pos: &mut usize,
    mut on_serde: impl FnMut(&str, Option<&str>),
) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        *pos += 1;
        let group = match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("expected attribute group after #, found {other:?}"),
        };
        *pos += 1;
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            other => panic!("expected serde(...) arguments, found {other:?}"),
        };
        let arg_tokens: Vec<TokenTree> = args.into_iter().collect();
        let mut i = 0usize;
        while i < arg_tokens.len() {
            let key = match &arg_tokens[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected serde attribute key, found {other:?}"),
            };
            i += 1;
            let mut value: Option<String> = None;
            if let Some(TokenTree::Punct(p)) = arg_tokens.get(i) {
                if p.as_char() == '=' {
                    i += 1;
                    value = Some(match &arg_tokens[i] {
                        TokenTree::Literal(l) => strip_quotes(&l.to_string()),
                        other => panic!("expected string literal, found {other:?}"),
                    });
                    i += 1;
                }
            }
            on_serde(&key, value.as_deref());
            if let Some(TokenTree::Punct(p)) = arg_tokens.get(i) {
                if p.as_char() == ',' {
                    i += 1;
                }
            }
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1; // pub(crate) / pub(super)
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn peek_punct(tokens: &[TokenTree], pos: usize) -> Option<char> {
    match tokens.get(pos) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}

/// Number of commas at angle-bracket depth zero (token groups are atomic, so
/// only `<`/`>` nesting needs tracking).
fn top_level_commas(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    commas
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let mut attrs = FieldAttrs::default();
        collect_attrs(&tokens, &mut pos, |key, val| match (key, val) {
            ("skip", None) => attrs.skip = true,
            ("default", None) => attrs.default = Some(None),
            ("default", Some(path)) => attrs.default = Some(Some(path.to_string())),
            other => panic!("unsupported field serde attribute {other:?}"),
        });
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            pos += 1;
        }
        if pos < tokens.len() {
            pos += 1; // consume the comma
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        collect_attrs(&tokens, &mut pos, |key, _| {
            panic!("unsupported variant serde attribute `{key}`")
        });
        let name = expect_ident(&tokens, &mut pos);
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = tokens.get(pos) {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = Some(parse_named_fields(g.stream()));
                    pos += 1;
                }
                Delimiter::Parenthesis => {
                    panic!("tuple enum variants are not supported ({name})")
                }
                _ => {}
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// serde's `rename_all = "snake_case"` conversion.
fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

fn variant_wire_name(item: &Item, variant: &str) -> String {
    if item.attrs.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => "::serde::value::Value::Null".to_string(),
        Body::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Named(fields) => {
            let mut code = String::from(
                "{ let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                code.push_str(&format!(
                    "obj.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            code.push_str("::serde::value::Value::Object(obj) }");
            code
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = variant_wire_name(item, &v.name);
                match (&v.fields, &item.attrs.tag) {
                    (None, None) => {
                        // Externally tagged unit variant: plain string.
                        arms.push_str(&format!(
                            "Self::{v} => ::serde::value::Value::String(\"{wire}\".to_string()),\n",
                            v = v.name
                        ));
                    }
                    (None, Some(tag)) => {
                        arms.push_str(&format!(
                            "Self::{v} => ::serde::value::Value::Object(vec![(\"{tag}\".to_string(), ::serde::value::Value::String(\"{wire}\".to_string()))]),\n",
                            v = v.name
                        ));
                    }
                    (Some(fields), tag) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pattern = bindings.join(", ");
                        let mut inner = String::new();
                        match tag {
                            Some(tag) => {
                                inner.push_str(&format!(
                                    "let mut obj = vec![(\"{tag}\".to_string(), ::serde::value::Value::String(\"{wire}\".to_string()))];\n"
                                ));
                                for f in fields {
                                    if f.attrs.skip {
                                        continue;
                                    }
                                    inner.push_str(&format!(
                                        "obj.push((\"{n}\".to_string(), ::serde::Serialize::to_value({n})));\n",
                                        n = f.name
                                    ));
                                }
                                inner.push_str("::serde::value::Value::Object(obj)");
                            }
                            None => {
                                inner.push_str(
                                    "let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n",
                                );
                                for f in fields {
                                    if f.attrs.skip {
                                        continue;
                                    }
                                    inner.push_str(&format!(
                                        "inner.push((\"{n}\".to_string(), ::serde::Serialize::to_value({n})));\n",
                                        n = f.name
                                    ));
                                }
                                inner.push_str(&format!(
                                    "::serde::value::Value::Object(vec![(\"{wire}\".to_string(), ::serde::value::Value::Object(inner))])"
                                ));
                            }
                        }
                        arms.push_str(&format!(
                            "Self::{v} {{ {pattern} }} => {{ {inner} }},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_field_extractor(container: &str, f: &Field, source: &str) -> String {
    if f.attrs.skip {
        return format!("{n}: ::std::default::Default::default(),\n", n = f.name);
    }
    let fallback = match &f.attrs.default {
        Some(Some(path)) => format!("{path}()"),
        Some(None) => "::std::default::Default::default()".to_string(),
        None => format!(
            "return ::std::result::Result::Err(::serde::de::Error::missing_field(\"{n}\", \"{container}\"))",
            n = f.name
        ),
    };
    format!(
        "{n}: match ::serde::value::find({source}, \"{n}\") {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::std::option::Option::None => {fallback},\n\
         }},\n",
        n = f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => format!(
            "match v {{\n\
                 ::serde::value::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::de::Error::expected(\"null\", other)),\n\
             }}"
        ),
        Body::Newtype => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Body::Named(fields) => {
            let mut code = format!(
                "let obj = match v {{\n\
                     ::serde::value::Value::Object(o) => o,\n\
                     other => return ::std::result::Result::Err(::serde::de::Error::expected(\"object\", other)),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                code.push_str(&gen_field_extractor(name, f, "obj"));
            }
            code.push_str("})");
            code
        }
        Body::Enum(variants) => {
            let all_unit = variants.iter().all(|v| v.fields.is_none());
            match (&item.attrs.tag, all_unit) {
                (None, true) => {
                    // Plain string enum.
                    let mut arms = String::new();
                    for v in variants {
                        let wire = variant_wire_name(item, &v.name);
                        arms.push_str(&format!(
                            "\"{wire}\" => ::std::result::Result::Ok(Self::{v}),\n",
                            v = v.name
                        ));
                    }
                    format!(
                        "let s = match v {{\n\
                             ::serde::value::Value::String(s) => s,\n\
                             other => return ::std::result::Result::Err(::serde::de::Error::expected(\"string\", other)),\n\
                         }};\n\
                         match s.as_str() {{\n{arms}\
                             other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
                         }}"
                    )
                }
                (Some(tag), _) => {
                    // Internally tagged.
                    let mut arms = String::new();
                    for v in variants {
                        let wire = variant_wire_name(item, &v.name);
                        match &v.fields {
                            None => arms.push_str(&format!(
                                "\"{wire}\" => ::std::result::Result::Ok(Self::{v}),\n",
                                v = v.name
                            )),
                            Some(fields) => {
                                let mut extract = String::new();
                                for f in fields {
                                    extract.push_str(&gen_field_extractor(name, f, "obj"));
                                }
                                arms.push_str(&format!(
                                    "\"{wire}\" => ::std::result::Result::Ok(Self::{v} {{\n{extract}}}),\n",
                                    v = v.name
                                ));
                            }
                        }
                    }
                    format!(
                        "let obj = match v {{\n\
                             ::serde::value::Value::Object(o) => o,\n\
                             other => return ::std::result::Result::Err(::serde::de::Error::expected(\"object\", other)),\n\
                         }};\n\
                         let tag = match ::serde::value::find(obj, \"{tag}\") {{\n\
                             ::std::option::Option::Some(::serde::value::Value::String(s)) => s.as_str(),\n\
                             _ => return ::std::result::Result::Err(::serde::de::Error::missing_field(\"{tag}\", \"{name}\")),\n\
                         }};\n\
                         match tag {{\n{arms}\
                             other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
                         }}"
                    )
                }
                (None, false) => {
                    // Externally tagged with data variants: unit variants are
                    // strings, data variants are single-key objects.
                    let mut string_arms = String::new();
                    let mut object_arms = String::new();
                    for v in variants {
                        let wire = variant_wire_name(item, &v.name);
                        match &v.fields {
                            None => string_arms.push_str(&format!(
                                "\"{wire}\" => return ::std::result::Result::Ok(Self::{v}),\n",
                                v = v.name
                            )),
                            Some(fields) => {
                                let mut extract = String::new();
                                for f in fields {
                                    extract.push_str(&gen_field_extractor(name, f, "inner"));
                                }
                                object_arms.push_str(&format!(
                                    "\"{wire}\" => {{\n\
                                         let inner = match payload {{\n\
                                             ::serde::value::Value::Object(o) => o,\n\
                                             other => return ::std::result::Result::Err(::serde::de::Error::expected(\"object\", other)),\n\
                                         }};\n\
                                         return ::std::result::Result::Ok(Self::{v} {{\n{extract}}});\n\
                                     }}\n",
                                    v = v.name
                                ));
                            }
                        }
                    }
                    format!(
                        "match v {{\n\
                             ::serde::value::Value::String(s) => match s.as_str() {{\n{string_arms}\
                                 other => return ::std::result::Result::Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
                             }},\n\
                             ::serde::value::Value::Object(o) if o.len() == 1 => {{\n\
                                 let (key, payload) = &o[0];\n\
                                 match key.as_str() {{\n{object_arms}\
                                     other => return ::std::result::Result::Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
                                 }}\n\
                             }}\n\
                             other => return ::std::result::Result::Err(::serde::de::Error::expected(\"string or single-key object\", other)),\n\
                         }}"
                    )
                }
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
