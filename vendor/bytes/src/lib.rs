//! Offline vendored stand-in for the `bytes` crate: the little-endian
//! cursor/builder subset the binary dataset format uses, backed by plain
//! `Vec<u8>` (no refcounted zero-copy slices).

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Read a single byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for little-endian values.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
