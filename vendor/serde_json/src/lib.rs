//! Offline vendored stand-in for `serde_json`.
//!
//! Works over the vendored `serde` crate's [`Value`] tree: serialization
//! converts `T: Serialize` to a `Value` and renders JSON text; deserialization
//! parses JSON text into a `Value` and converts with `T: Deserialize`.
//!
//! Numeric fidelity: integers keep the `u64`/`i64` distinction, and floats
//! are rendered with Rust's shortest round-trip formatting, so every finite
//! `f32`/`f64` survives a round trip bit-exactly.

use std::fmt;

pub use serde::value::{Number, Value};

/// Error produced by JSON parsing or rendering.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::msg(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserialize `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Convert a [`Value`] tree into `T`.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Helper used by the [`json!`] macro.
pub fn value_of<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Build a [`Value`] from a JSON-like literal. Supports the object / array /
/// scalar-expression forms this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> = vec![
            $( ($key.to_string(), $crate::value_of(&$val)) ),*
        ];
        $crate::Value::Object(obj)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::value_of(&$val) ),* ])
    };
    ($other:expr) => { $crate::value_of(&$other) };
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            use fmt::Write;
            write!(out, "{n}").expect("writing to String cannot fail");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

/// Parse a JSON document into a [`Value`]. Trailing non-whitespace is an
/// error.
pub fn parse(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at offset {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::msg("unexpected end of input")),
        Some(b'n') => expect_literal(bytes, pos, "null").map(|_| Value::Null),
        Some(b't') => expect_literal(bytes, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::msg(format!("expected , or ] at offset {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::msg(format!("expected : at offset {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::msg(format!("expected , or }} at offset {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::msg(format!("invalid literal at offset {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::msg(format!("expected string at offset {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::msg("invalid \\u escape"))?;
                        // Surrogate pairs are not produced by our writer; map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::msg("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::msg("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::msg(format!("invalid number at offset {start}")));
    }
    if !is_float {
        if text.starts_with('-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U(u)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::F(f)))
        .map_err(|_| Error::msg(format!("invalid number {text:?}")))
}
