//! Offline vendored stand-in for the `rayon` crate.
//!
//! Provides genuinely parallel iterators (not sequential fakes) over scoped
//! OS threads: a parallel iterator is a splittable description of work; at a
//! `collect`/`for_each`/`sum` sink it is split into pieces and the pieces are
//! distributed round-robin over `current_num_threads()` scoped threads, then
//! reassembled in order. There is no work stealing — fine for the uniform
//! workloads (distance-kernel batches) this workspace parallelizes.
//!
//! The `ThreadPool` is a lightweight configuration handle: `install` pins the
//! number of threads sinks use via a thread-local, it does not own threads.

use std::cell::Cell;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
    };
}

// ---------------------------------------------------------------------------
// Thread-count plumbing.
// ---------------------------------------------------------------------------

thread_local! {
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel sinks on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Error building a thread pool (never produced; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the thread count; `0` = auto (available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A configured degree of parallelism. `install` scopes it onto the calling
/// thread: any parallel sink run inside uses this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        let guard = RestoreGuard { previous };
        let result = op();
        drop(guard);
        result
    }

    /// The configured thread count (0 = auto).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

struct RestoreGuard {
    previous: usize,
}

impl Drop for RestoreGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|c| c.set(self.previous));
    }
}

// ---------------------------------------------------------------------------
// The parallel iterator abstraction.
// ---------------------------------------------------------------------------

/// A splittable, sendable description of a sequence of items.
pub trait ParallelIterator: Sized + Send {
    /// Item type.
    type Item: Send;

    /// Upper-bound estimate of the number of items (used to decide splits).
    fn len_hint(&self) -> usize;

    /// Split into two halves, or return `self` unchanged if indivisible.
    fn split(self) -> Result<(Self, Self), Self>;

    /// Evaluate sequentially, appending produced items to `out`.
    fn drive(self, out: &mut Vec<Self::Item>);

    /// Map each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { base: self, f }
    }

    /// Keep items satisfying `p`.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send + Clone,
    {
        Filter { base: self, p }
    }

    /// Map each item to a sequential iterator and flatten.
    fn flat_map_iter<It, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        It: IntoIterator,
        It::Item: Send,
        F: Fn(Self::Item) -> It + Sync + Send + Clone,
    {
        FlatMapIter { base: self, f }
    }

    /// Evaluate in parallel and collect into `C`.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(execute(self))
    }

    /// Evaluate in parallel, discarding items after applying `f`.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send + Clone,
    {
        let _ = execute(self.map(move |item| {
            f(item);
        }));
    }

    /// Sum the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        execute(self).into_iter().sum()
    }

    /// Count the items.
    fn count(self) -> usize {
        execute(self).len()
    }

    /// Smallest item under `total_cmp`-style ordering via `f`.
    fn min_by<F>(self, f: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering + Sync + Send,
    {
        execute(self).into_iter().min_by(f)
    }
}

/// Conversion into a parallel iterator (owning).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel sinks a collection can be built from.
pub trait FromParallelIterator<T> {
    /// Assemble from the evaluated items.
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

/// Evaluate a parallel iterator, preserving item order.
fn execute<I: ParallelIterator>(iter: I) -> Vec<I::Item> {
    let threads = current_num_threads();
    if threads <= 1 || iter.len_hint() < 2 {
        let mut out = Vec::new();
        iter.drive(&mut out);
        return out;
    }

    // Split into ~4 pieces per thread so uneven pieces still balance.
    // `pieces` stays in sequence order: a split replaces one piece with its
    // two ordered halves in place, so enumeration keys reassemble the output
    // in the original item order.
    let target_pieces = threads.saturating_mul(4).max(2);
    let mut pieces: Vec<I> = vec![iter];
    while pieces.len() < target_pieces {
        // Split the piece with the largest remaining hint.
        let (idx, hint) = match pieces
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.len_hint()))
            .max_by_key(|&(_, hint)| hint)
        {
            Some(best) => best,
            None => break,
        };
        if hint < 2 {
            break;
        }
        let piece = pieces.remove(idx);
        match piece.split() {
            Ok((a, b)) => {
                pieces.insert(idx, b);
                pieces.insert(idx, a);
            }
            Err(original) => {
                pieces.insert(idx, original);
                break;
            }
        }
    }

    let tagged: Vec<(usize, I)> = pieces.into_iter().enumerate().collect();
    let mut results: Vec<(usize, Vec<I::Item>)> = Vec::with_capacity(tagged.len());
    std::thread::scope(|scope| {
        let mut buckets: Vec<Vec<(usize, I)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, piece) in tagged {
            buckets[i % threads].push((i, piece));
        }
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    // Nested parallel sinks inside a worker run sequentially:
                    // the configured thread count bounds the *total* number
                    // of workers, so e.g. a batched estimator kernel invoked
                    // from inside a parallel prescan cannot oversubscribe
                    // the machine. (Real rayon reuses its pool via work
                    // stealing; pinning workers to 1 is this shim's
                    // equivalent bound.)
                    INSTALLED_THREADS.with(|c| c.set(1));
                    bucket
                        .into_iter()
                        .map(|(key, piece)| {
                            let mut out = Vec::new();
                            piece.drive(&mut out);
                            (key, out)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("parallel worker panicked"));
        }
    });
    results.sort_by_key(|&(key, _)| key);
    let mut out = Vec::new();
    for (_, mut chunk) in results {
        out.append(&mut chunk);
    }
    out
}

// ---------------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------------

/// Parallel iterator over a `usize` range.
#[derive(Debug, Clone)]
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn len_hint(&self) -> usize {
        self.end - self.start
    }

    fn split(self) -> Result<(Self, Self), Self> {
        if self.len_hint() < 2 {
            return Err(self);
        }
        let mid = self.start + self.len_hint() / 2;
        Ok((
            RangeIter {
                start: self.start,
                end: mid,
            },
            RangeIter {
                start: mid,
                end: self.end,
            },
        ))
    }

    fn drive(self, out: &mut Vec<usize>) {
        out.extend(self.start..self.end);
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeIter;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// Parallel iterator over slice elements.
#[derive(Debug)]
pub struct SliceIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn len_hint(&self) -> usize {
        self.slice.len()
    }

    fn split(self) -> Result<(Self, Self), Self> {
        if self.slice.len() < 2 {
            return Err(self);
        }
        let (a, b) = self.slice.split_at(self.slice.len() / 2);
        Ok((SliceIter { slice: a }, SliceIter { slice: b }))
    }

    fn drive(self, out: &mut Vec<&'a T>) {
        out.extend(self.slice.iter());
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over owned `Vec` elements.
#[derive(Debug)]
pub struct VecIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn len_hint(&self) -> usize {
        self.items.len()
    }

    fn split(mut self) -> Result<(Self, Self), Self> {
        if self.items.len() < 2 {
            return Err(self);
        }
        let tail = self.items.split_off(self.items.len() / 2);
        Ok((self, VecIter { items: tail }))
    }

    fn drive(self, out: &mut Vec<T>) {
        out.extend(self.items);
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

/// Parallel iterator over fixed-size chunks of a slice.
#[derive(Debug)]
pub struct ChunksIter<'a, T: Sync> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];

    fn len_hint(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split(self) -> Result<(Self, Self), Self> {
        let chunks = self.len_hint();
        if chunks < 2 {
            return Err(self);
        }
        let mid = (chunks / 2) * self.chunk;
        let (a, b) = self.slice.split_at(mid);
        Ok((
            ChunksIter {
                slice: a,
                chunk: self.chunk,
            },
            ChunksIter {
                slice: b,
                chunk: self.chunk,
            },
        ))
    }

    fn drive(self, out: &mut Vec<&'a [T]>) {
        out.extend(self.slice.chunks(self.chunk));
    }
}

/// `par_chunks` over slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksIter {
            slice: self,
            chunk: chunk_size,
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------------

/// Map adapter.
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send + Clone,
{
    type Item = R;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn split(self) -> Result<(Self, Self), Self> {
        match self.base.split() {
            Ok((a, b)) => Ok((
                Map {
                    base: a,
                    f: self.f.clone(),
                },
                Map { base: b, f: self.f },
            )),
            Err(base) => Err(Map { base, f: self.f }),
        }
    }

    fn drive(self, out: &mut Vec<R>) {
        let mut items = Vec::new();
        self.base.drive(&mut items);
        out.extend(items.into_iter().map(self.f));
    }
}

/// Flat-map adapter over sequential inner iterators.
#[derive(Debug)]
pub struct FlatMapIter<I, F> {
    base: I,
    f: F,
}

impl<I, It, F> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    It: IntoIterator,
    It::Item: Send,
    F: Fn(I::Item) -> It + Sync + Send + Clone,
{
    type Item = It::Item;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn split(self) -> Result<(Self, Self), Self> {
        match self.base.split() {
            Ok((a, b)) => Ok((
                FlatMapIter {
                    base: a,
                    f: self.f.clone(),
                },
                FlatMapIter { base: b, f: self.f },
            )),
            Err(base) => Err(FlatMapIter { base, f: self.f }),
        }
    }

    fn drive(self, out: &mut Vec<It::Item>) {
        let mut items = Vec::new();
        self.base.drive(&mut items);
        for item in items {
            out.extend((self.f)(item));
        }
    }
}

/// Filter adapter.
#[derive(Debug)]
pub struct Filter<I, P> {
    base: I,
    p: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Sync + Send + Clone,
{
    type Item = I::Item;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn split(self) -> Result<(Self, Self), Self> {
        match self.base.split() {
            Ok((a, b)) => Ok((
                Filter {
                    base: a,
                    p: self.p.clone(),
                },
                Filter { base: b, p: self.p },
            )),
            Err(base) => Err(Filter { base, p: self.p }),
        }
    }

    fn drive(self, out: &mut Vec<I::Item>) {
        let mut items = Vec::new();
        self.base.drive(&mut items);
        out.extend(items.into_iter().filter(|x| (self.p)(x)));
    }
}
