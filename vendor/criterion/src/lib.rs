//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the macro / builder API surface the bench targets use, with a
//! simple wall-clock measurement loop (short warm-up, then a time-boxed
//! measurement phase reporting mean ns/iteration). No statistics machinery,
//! no HTML reports — numbers print to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `routine`: warm up briefly, then run it repeatedly for a
    /// fixed time budget and record the mean latency.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: at least 3 iterations or 20 ms, whichever comes first.
        let warmup_deadline = Instant::now() + Duration::from_millis(20);
        for _ in 0..3 {
            black_box(routine());
        }
        while Instant::now() < warmup_deadline {
            black_box(routine());
        }
        // Measurement: run for ~200 ms.
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        let elapsed = started.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sample-size knob (accepted for API parity; the time-boxed loop
    /// ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time knob (accepted for API parity).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `routine` against `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        routine(&mut bencher, input);
        report(&format!("{}/{id}", self.name), bencher.ns_per_iter);
        self
    }

    /// Benchmark `routine` without an explicit input.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        routine(&mut bencher);
        report(&format!("{}/{id}", self.name), bencher.ns_per_iter);
        self
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Benchmark a single function.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        routine(&mut bencher);
        report(&name.to_string(), bencher.ns_per_iter);
        self
    }
}

fn report(label: &str, ns: f64) {
    if ns >= 1e6 {
        println!("{label:<60} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{label:<60} {:>12.3} us/iter", ns / 1e3);
    } else {
        println!("{label:<60} {ns:>12.1} ns/iter");
    }
}

/// Define a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
