//! Offline vendored stand-in for `rand_distr`: the [`Normal`] and [`Zipf`]
//! distributions this workspace samples from.

use rand::{Rng, RngCore};
use std::fmt;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Float types [`Normal`] can produce.
pub trait NormalFloat: Copy {
    /// Widen to `f64` for the Box–Muller computation.
    fn to_f64(self) -> f64;
    /// Narrow back from `f64`.
    fn from_f64(v: f64) -> Self;
}

impl NormalFloat for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
}

impl NormalFloat for f32 {
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

/// Gaussian distribution sampled with Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F: NormalFloat = f64> {
    mean: F,
    std_dev: F,
}

impl<F: NormalFloat> Normal<F> {
    /// `N(mean, std_dev²)`. `std_dev` must be finite and non-negative.
    pub fn new(mean: F, std_dev: F) -> Result<Self, ParamError> {
        let s = std_dev.to_f64();
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError("standard deviation must be finite and >= 0"));
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: NormalFloat> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller; the paired value is discarded to keep `&self` stateless.
        let u1: f64 = loop {
            let u: f64 = rng.gen_range(0.0f64..1.0);
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = rng.gen_range(0.0f64..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`: `P(k) ∝ k^(-s)`.
///
/// Samples by inverse transform over a precomputed cumulative table, which is
/// exact and fast for the vocabulary sizes this workspace generates.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Zipf over `1..=n` with exponent `s >= 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError("Zipf exponent must be finite and >= 0"));
        }
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cumulative.push(total);
        }
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        Ok(Self { cumulative })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        let idx = self.cumulative.partition_point(|&c| c < u);
        (idx.min(self.cumulative.len() - 1) + 1) as f64
    }
}
