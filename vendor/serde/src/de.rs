//! Deserialization error type.

use crate::value::Value;
use std::fmt;

/// Error produced when a [`crate::value::Value`] tree cannot be
/// converted into the requested type.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Error with a custom message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::msg(format!("expected {what}, found {}", found.type_name()))
    }

    /// Missing-field error.
    pub fn missing_field(field: &str, container: &str) -> Self {
        Self::msg(format!("missing field `{field}` in {container}"))
    }

    /// Unknown-variant error.
    pub fn unknown_variant(variant: &str, container: &str) -> Self {
        Self::msg(format!("unknown variant `{variant}` for {container}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}
