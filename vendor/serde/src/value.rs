//! The owned value tree all (de)serialization flows through.

use std::fmt;

/// A JSON-shaped value.
///
/// Objects preserve insertion order (they are association lists, not hash
/// maps); lookups are linear, which is fine for the small documents this
/// workspace persists.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered association list.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving the integer/float distinction like `serde_json`
/// so `u64`/`i64` round-trip without precision loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Value {
    /// The value as `u64`, if it is a non-negative integer (floats with an
    /// exact integer value are accepted, mirroring serde_json's lenient
    /// numeric coercions used via `as_u64` chains).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(n)) => Some(*n),
            Value::Number(Number::I(n)) if *n >= 0 => Some(*n as u64),
            Value::Number(Number::F(f))
                if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(n)) => Some(*n),
            Value::Number(Number::U(n)) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::Number(Number::F(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F(f)) => Some(*f),
            Value::Number(Number::U(n)) => Some(*n as f64),
            Value::Number(Number::I(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object association list, if it is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Short type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Look up `key` in an object association list.
pub fn find<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U(n) => write!(f, "{n}"),
            Number::I(n) => write!(f, "{n}"),
            Number::F(x) => {
                if !x.is_finite() {
                    // serde_json refuses non-finite floats; emitting null keeps
                    // the output parseable, matching serde_json's Value path.
                    write!(f, "null")
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Keep integral floats recognizable as floats.
                    write!(f, "{x:.1}")
                } else {
                    // Rust's shortest round-trip formatting.
                    write!(f, "{x}")
                }
            }
        }
    }
}
