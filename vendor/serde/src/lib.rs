//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access and no
//! cargo registry cache, so the real `serde` cannot be fetched. This crate
//! implements the subset of serde's surface the workspace actually uses,
//! built around an owned JSON-like [`value::Value`] tree instead of serde's
//! zero-copy visitor architecture:
//!
//! * [`Serialize`] — convert `&self` into a [`value::Value`];
//! * [`Deserialize`] — reconstruct `Self` from a [`value::Value`];
//! * `#[derive(Serialize, Deserialize)]` via the companion `serde_derive`
//!   proc-macro, supporting named-field structs and enums (unit, struct and
//!   internally-tagged variants) plus the container attributes
//!   `rename_all = "snake_case"` and `tag = "..."` and the field attributes
//!   `skip`, `default` and `default = "path"`.
//!
//! The trade-off is performance (every (de)serialization materializes a
//! `Value` tree), which is irrelevant for the small configuration files and
//! test fixtures this workspace persists.

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use value::Value;

/// Serialize `self` into an owned [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------------
// Forwarding impls.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(value::Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_u64().ok_or_else(|| de::Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| de::Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(value::Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_i64().ok_or_else(|| de::Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| de::Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(value::Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64().ok_or_else(|| de::Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // The f32 -> f64 widening is exact, so shortest-f64 formatting in the
        // JSON layer round-trips the original f32 bit pattern (for finite
        // values; non-finite values serialize as null, as serde_json does).
        Value::Number(value::Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| de::Error::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::expected("bool", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(de::Error::expected("string", v)),
        }
    }
}

/// `&'static str` deserialization leaks the parsed string. Real serde only
/// supports borrowed `&str`; this workspace deserializes `&'static str`
/// exclusively for small, fixed dataset-preset names, so the leak is bounded
/// and harmless.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(de::Error::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(de::Error::expected("single-character string", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers.
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(de::Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(de::Error::msg(format!(
                                "expected tuple of {expected} elements, found {}", items.len())));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(de::Error::expected("array (tuple)", v)),
                }
            }
        }
    )+};
}
ser_de_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

/// Map keys must render to / parse from JSON object-key strings, mirroring
/// how `serde_json` stringifies integer map keys.
pub trait MapKey: Sized {
    /// Render the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parse the key back from a JSON object key.
    fn from_key(s: &str) -> Result<Self, de::Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, de::Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, de::Error> {
                s.parse().map_err(|_| de::Error::msg(format!(
                    "invalid {} map key {s:?}", stringify!($t))))
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        // Deterministic output independent of hasher iteration order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(de::Error::expected("object", v)),
        }
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: MapKey,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: MapKey + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(de::Error::expected("object", v)),
        }
    }
}

impl<T, S> Serialize for std::collections::HashSet<T, S>
where
    T: Serialize + Ord,
    S: std::hash::BuildHasher,
{
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        // Deterministic output independent of hasher iteration order.
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(de::Error::expected("array", v)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(de::Error::expected("array", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// std types.
// ---------------------------------------------------------------------------

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Matches serde's canonical {secs, nanos} encoding for Duration.
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let obj = match v {
            Value::Object(o) => o,
            _ => return Err(de::Error::expected("Duration object", v)),
        };
        let secs = value::find(obj, "secs")
            .ok_or_else(|| de::Error::missing_field("secs", "Duration"))
            .and_then(u64::from_value)?;
        let nanos = value::find(obj, "nanos")
            .ok_or_else(|| de::Error::missing_field("nanos", "Duration"))
            .and_then(u32::from_value)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        String::from_value(v).map(std::path::PathBuf::from)
    }
}

impl Serialize for std::path::Path {
    fn to_value(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(de::Error::expected("null", v)),
        }
    }
}
